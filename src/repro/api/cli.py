"""``python -m repro`` — command-line front end of the unified API.

Subcommands::

    python -m repro list                      # registered systems & scenarios
    python -m repro properties 'randtree.*'   # the property registry
    python -m repro run randtree --ticks 50 --json
    python -m repro run randtree --properties 'randtree.*' --json
    python -m repro run paxos --scenario figure13-bug1 --mode steering
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Optional, Sequence

from ..analysis.reporting import format_table, render_run_report
from ..obs import configure_logging, progress_logger
from .experiment import Experiment, parse_mode
from .registry import list_systems


def _parse_option(raw: str) -> tuple[str, Any]:
    """``key=value`` options with JSON-ish value coercion."""
    if "=" not in raw:
        raise argparse.ArgumentTypeError(
            f"option {raw!r} must have the form key=value")
    key, value = raw.split("=", 1)
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value


def _parse_axis(raw: str) -> tuple[str, str]:
    """``key=values`` axis arguments for the campaign subcommand."""
    if "=" not in raw:
        raise argparse.ArgumentTypeError(
            f"axis {raw!r} must have the form key=values")
    key, values = raw.split("=", 1)
    return key, values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run CrystalBall experiments over the registered systems.")
    # Shared by every subcommand through parents=[...]: a -v defined on the
    # root parser alone would be reset by the subparser's own defaults.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("-v", "--verbose", action="count", default=0,
                        help="log more (-v: info, -vv: debug)")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser("list", parents=[common],
                              help="list registered systems and scenarios")
    list_cmd.add_argument("--json", action="store_true", dest="as_json",
                          help="machine-readable output")

    faults_cmd = sub.add_parser("faults", parents=[common],
                                help="list fault-injection presets")
    faults_cmd.add_argument("--json", action="store_true", dest="as_json",
                            help="machine-readable output")

    props_cmd = sub.add_parser(
        "properties", parents=[common],
        help="list the registered safety/liveness properties")
    props_cmd.add_argument("pattern", nargs="?", default=None,
                           help="glob filter over property ids "
                                "(e.g. 'randtree.*', '*.agreement')")
    props_cmd.add_argument("--json", action="store_true", dest="as_json",
                           help="machine-readable output")

    run = sub.add_parser("run", parents=[common],
                         help="run one system or scripted scenario")
    run.add_argument("system", help="registered system name (see `list`)")
    run.add_argument("--scenario", default=None,
                     help="named scripted scenario instead of a live run")
    run.add_argument("--mode", default="debug",
                     help="CrystalBall mode: off, debug, steering, isc-only")
    run.add_argument("--nodes", type=int, default=None, help="deployment size")
    run.add_argument("--duration", type=float, default=None,
                     help="simulated seconds to run")
    run.add_argument("--ticks", type=int, default=None,
                     help="duration in controller tick intervals")
    run.add_argument("--seed", type=int, default=0, help="random seed")
    run.add_argument("--engine", default=None,
                     help="search engine: serial, parallel or parallel:N")
    run.add_argument("--portfolio", action="store_true",
                     help="race exhaustive/consequence/random-walk strategies")
    run.add_argument("--max-states", type=int, default=None,
                     help="consequence-prediction state budget per run")
    run.add_argument("--max-depth", type=int, default=None,
                     help="consequence-prediction depth bound")
    run.add_argument("--check-period", type=int, default=None,
                     help="sampled deep checking: each controller runs its "
                          "deep-check round every N-th wakeup, phase-rotated "
                          "across nodes (default 1 = every round)")
    run.add_argument("--churn-interval", type=float, default=None,
                     help="mean seconds between churn events")
    run.add_argument("--no-churn", action="store_true", help="disable churn")
    run.add_argument("--faults", metavar="PRESET", action="append", default=[],
                     help="fault preset(s) to inject, comma-separable and "
                          "repeatable (see `python -m repro faults`)")
    run.add_argument("--fault-seed", type=int, default=None,
                     help="nemesis seed (defaults to run seed + 13)")
    run.add_argument("--properties", metavar="PATTERN", action="append",
                     default=[],
                     help="check only properties matching these id "
                          "glob(s), comma-separable and repeatable "
                          "(see `python -m repro properties`); replaces "
                          "the system's default set")
    run.add_argument("--exclude-properties", metavar="PATTERN",
                     action="append", default=[],
                     help="drop matching properties from the selection "
                          "(repeatable; needs --properties)")
    run.add_argument("--full-recheck", action="store_true",
                     help="disable the live monitor's incremental "
                          "dirty-node fast path (debugging/benchmarks)")
    run.add_argument("--fail-on-violation", action="store_true",
                     help="exit non-zero when the run observes a safety "
                          "violation (live monitor or scenario outcome)")
    run.add_argument("--workload", default=None,
                     help="drive the live run with this registered "
                          "open-loop workload (see `list`)")
    run.add_argument("--workload-rate", type=float, default=None,
                     help="override the workload's request rate "
                          "(requests per simulated second)")
    run.add_argument("--workload-burst", type=int, default=None,
                     help="override the requests injected per generator "
                          "wakeup")
    run.add_argument("--workload-keys", type=int, default=None,
                     help="override the workload's key-space size")
    run.add_argument("--workload-distribution", default=None,
                     choices=["uniform", "zipf", "hotspot", "sequential"],
                     help="override the key-popularity distribution")
    run.add_argument("--workload-start", type=float, default=None,
                     help="override the stream's start offset (simulated "
                          "seconds)")
    run.add_argument("--workload-duration", type=float, default=None,
                     help="override the stream's length (simulated seconds)")
    run.add_argument("--backend", default=None,
                     help="execution backend: sim (default, simulated "
                          "transport) or tcp (real asyncio sockets)")
    run.add_argument("--backend-option", metavar="KEY=VALUE",
                     type=_parse_option, action="append", default=[],
                     help="backend-specific option, e.g. host=127.0.0.1 "
                          "for tcp (repeatable; needs --backend)")
    run.add_argument("--option", metavar="KEY=VALUE", type=_parse_option,
                     action="append", default=[],
                     help="system/scenario-specific option (repeatable)")
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="write a structured JSONL execution trace to PATH "
                          "(inspect with `python -m repro trace PATH`)")
    run.add_argument("--metrics", action="store_true",
                     help="collect obs metrics into the report")
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="print the full RunReport as JSON")

    attack = sub.add_parser(
        "attack", parents=[common],
        help="hunt for a minimal byzantine counterexample to a named "
             "property and emit an attack-report artifact")
    attack.add_argument("system", help="registered system name (see `list`)")
    attack.add_argument("--property", dest="property_id", required=True,
                        help="registry id of the property under attack "
                             "(e.g. paxos.agreement)")
    attack.add_argument("--faults", metavar="PRESET", action="append",
                        default=[],
                        help="byzantine fault preset(s)/type(s) to attack "
                             "with, comma-separable and repeatable "
                             "(default: equivocation)")
    attack.add_argument("--nodes", type=int, default=None,
                        help="deployment size")
    attack.add_argument("--duration", type=float, default=None,
                        help="simulated seconds per attempt")
    attack.add_argument("--seed", type=int, default=0,
                        help="run seed of every seeded execution")
    attack.add_argument("--attempts", type=int, default=8,
                        help="seeded attack schedules to try (default 8)")
    attack.add_argument("--mode", default="off",
                        help="CrystalBall mode during the attacked runs "
                             "(off, debug, steering, isc-only); steering "
                             "shows the controller filtering the attack")
    attack.add_argument("--no-minimize", action="store_true",
                        help="skip delta-debugging trace minimization")
    attack.add_argument("--option", metavar="KEY=VALUE", type=_parse_option,
                        action="append", default=[],
                        help="system-specific option (repeatable)")
    attack.add_argument("--trace", metavar="PATH", default=None,
                        help="write a JSONL trace of the final replay run")
    attack.add_argument("--out", metavar="DIR", default="attack-reports",
                        help="directory for the JSON + markdown attack "
                             "report (default: attack-reports)")
    attack.add_argument("--json", action="store_true", dest="as_json",
                        help="print the AttackReport as JSON on stdout")

    trace = sub.add_parser(
        "trace", parents=[common],
        help="inspect a JSONL trace written by `run --trace`")
    trace.add_argument("file", help="trace file (JSONL, schema v1)")
    trace.add_argument("--summary", action="store_true",
                       help="per-kind/per-node summary (default when no "
                            "filter is given)")
    trace.add_argument("--node", default=None,
                       help="only records from this node")
    trace.add_argument("--kind", default=None,
                       help="only records of this kind (event, send, "
                            "deliver, mc_run, filter_install, ...)")
    trace.add_argument("--contains", default=None,
                       help="only records whose JSON contains this "
                            "substring")
    trace.add_argument("--limit", type=int, default=50,
                       help="max records to list (default 50)")
    trace.add_argument("--chrome", metavar="OUT", default=None,
                       help="export as a Chrome trace-event JSON "
                            "(chrome://tracing, Perfetto)")
    trace.add_argument("--why-steering", metavar="NODE", default=None,
                       help="show the causal chain behind the last "
                            "steering decision on NODE")
    trace.add_argument("--validate", action="store_true",
                       help="check the file against trace schema v1 and "
                            "exit")
    trace.add_argument("--json", action="store_true", dest="as_json",
                       help="machine-readable output")

    campaign = sub.add_parser(
        "campaign", parents=[common],
        help="sweep systems × scenarios × fault presets × seeds × modes "
             "across a worker pool")
    campaign.add_argument(
        "--axes", metavar="KEY=VALUES", action="append", default=[],
        type=_parse_axis,
        help="axis values, comma-separated (repeatable): systems=all, "
             "presets=partition,chaos, seeds=0-7, modes=off,steering, "
             "scenarios=live, workloads=lookups,none, backends=sim,tcp; "
             "preset combos join with + (presets=partition+delay)")
    campaign.add_argument("--jobs", type=int, default=None,
                          help="worker processes (default: os.cpu_count())")
    campaign.add_argument("--out", metavar="PATH", default=None,
                          help="JSONL result store, one line per finished "
                               "run (streamed, resumable)")
    campaign.add_argument("--resume", action="store_true",
                          help="skip runs the --out store already completed")
    campaign.add_argument(
        "--duration", metavar="[SYSTEM=]SECONDS", action="append", default=[],
        help="simulated run length: a number for every system, or "
             "system=seconds (repeatable) for per-system lengths")
    campaign.add_argument("--nodes", type=int, default=None,
                          help="deployment size for live runs")
    campaign.add_argument("--churn", action="store_true",
                          help="enable churn (off by default so the fault "
                               "axis is the only adversary)")
    campaign.add_argument("--fault-seed", type=int, default=None,
                          help="nemesis seed (defaults to run seed + 13)")
    campaign.add_argument("--require-faults", action="store_true",
                          help="fail when a run with fault presets injected "
                               "nothing")
    campaign.add_argument("--fail-on-violation", action="store_true",
                          help="exit non-zero when any run observed a "
                               "safety violation")
    campaign.add_argument("--json", action="store_true", dest="as_json",
                          help="print the aggregate CampaignReport as JSON")
    campaign.add_argument("--markdown-summary", metavar="PATH", default=None,
                          help="also write a GitHub-flavored markdown "
                               "summary to PATH")
    return parser


def _cmd_list(as_json: bool) -> int:
    systems = list_systems()
    if as_json:
        payload = [{
            "name": spec.name,
            "summary": spec.summary,
            "properties": [prop.name for prop in spec.properties],
            "scenarios": {name: scenario.description
                          for name, scenario in sorted(spec.scenarios.items())},
            "workloads": {name: workload.description
                          for name, workload in sorted(spec.workloads.items())},
            "default_nodes": spec.default_nodes,
            "default_duration": spec.default_duration,
        } for spec in systems]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = []
    for spec in systems:
        rows.append([spec.name, len(spec.properties),
                     ", ".join(sorted(spec.scenarios)) or "-",
                     ", ".join(sorted(spec.workloads)) or "-", spec.summary])
    print(format_table(
        ["system", "properties", "scenarios", "workloads", "summary"], rows,
        title="Registered systems (python -m repro run <system>)"))
    return 0


def _cmd_properties(pattern: Optional[str], as_json: bool) -> int:
    from ..properties import all_properties, select_properties

    try:
        props = (select_properties(pattern) if pattern is not None
                 else all_properties())
    except ValueError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    props = sorted(props, key=lambda prop: prop.name)
    if as_json:
        print(json.dumps([prop.describe() for prop in props],
                         indent=2, sort_keys=True))
        return 0
    rows = []
    for prop in props:
        info = prop.describe()
        rows.append([
            info["id"], info["kind"], info.get("scope", "-"),
            info["severity"],
            ",".join(tag for tag in info["tags"] if tag != "liveness") or "-",
            (f"within {info['within']:g}s" if "within" in info else "-"),
            info["description"],
        ])
    print(format_table(
        ["property", "kind", "scope", "severity", "tags", "window",
         "description"],
        rows,
        title="Registered properties "
              "(python -m repro run <system> --properties <pattern>)"))
    return 0


def _cmd_faults(as_json: bool) -> int:
    from ..faults.presets import PRESETS

    # Expand with a nominal duration purely to describe the composition.
    expansions = {name: factory(100.0) for name, factory in sorted(PRESETS.items())}
    if as_json:
        payload = {name: [fault.name for fault in faults]
                   for name, faults in expansions.items()}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [[name, ", ".join(fault.name for fault in faults)]
            for name, faults in expansions.items()]
    print(format_table(["preset", "fault types"], rows,
                       title="Fault presets (python -m repro run <system> "
                             "--faults <preset>)"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        experiment = Experiment(args.system)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.scenario is not None:
        try:
            experiment.scenario(args.scenario)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    if args.nodes is not None:
        experiment.nodes(args.nodes)
    if args.duration is not None:
        experiment.duration(args.duration)
    if args.ticks is not None:
        experiment.ticks(args.ticks)
    experiment.seed(args.seed)

    cb_kwargs: dict[str, Any] = {}
    if args.engine is not None:
        cb_kwargs["engine"] = args.engine
    if args.portfolio:
        cb_kwargs["portfolio"] = True
    if args.max_states is not None or args.max_depth is not None:
        from ..mc.search import SearchBudget

        # Start from the system's registered default budget so passing only
        # one bound does not silently replace the other with a fixed value.
        spec = experiment.spec
        budget = (spec.search_budget_factory() if spec.search_budget_factory
                  else SearchBudget())
        if args.max_states is not None:
            budget.max_states = args.max_states
        if args.max_depth is not None:
            budget.max_depth = args.max_depth
        cb_kwargs["budget"] = budget
    if args.check_period is not None:
        from ..core.controller import CheckingPolicy

        cb_kwargs["checking"] = CheckingPolicy(period=args.check_period)
    try:
        experiment.crystalball(parse_mode(args.mode), **cb_kwargs)
    except ValueError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.no_churn:
        experiment.churn(False)
    elif args.churn_interval is not None:
        experiment.churn(interval=args.churn_interval)

    if args.faults:
        presets = [name for chunk in args.faults
                   for name in chunk.split(",") if name]
        experiment.faults(*presets, seed=args.fault_seed)
    elif args.fault_seed is not None:
        # No preset on the command line, but fault scenarios still honor
        # the nemesis seed.
        experiment.faults(seed=args.fault_seed)

    if args.properties:
        patterns = [name for chunk in args.properties
                    for name in chunk.split(",") if name]
        if not patterns:
            # An empty selection would silently disable all property
            # checking and make --fail-on-violation vacuously green.
            print("error: --properties was given but names no patterns",
                  file=sys.stderr)
            return 2
        exclude = [name for chunk in args.exclude_properties
                   for name in chunk.split(",") if name]
        experiment.properties(*patterns, exclude=exclude)
    elif args.exclude_properties:
        print("error: --exclude-properties needs --properties",
              file=sys.stderr)
        return 2
    if args.full_recheck:
        experiment.incremental_monitor(False)

    workload_overrides = {
        "rate": args.workload_rate,
        "burst": args.workload_burst,
        "keys": args.workload_keys,
        "distribution": args.workload_distribution,
        "start": args.workload_start,
        "duration": args.workload_duration,
    }
    if args.workload is not None:
        try:
            experiment.workload(args.workload, **workload_overrides)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    elif any(value is not None for value in workload_overrides.values()):
        print("error: --workload-* overrides need --workload",
              file=sys.stderr)
        return 2

    if args.backend is not None:
        try:
            experiment.backend(args.backend, **dict(args.backend_option))
        except ValueError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    elif args.backend_option:
        print("error: --backend-option needs --backend", file=sys.stderr)
        return 2

    if args.option:
        experiment.options(**dict(args.option))
    if args.trace is not None:
        experiment.trace(args.trace)
    if args.metrics:
        experiment.metrics(True)

    try:
        report = experiment.run()
    except ValueError as exc:
        # Bad user input (unknown option keys, invalid settings) — report it
        # like the other input errors instead of dumping a traceback.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.as_json:
        print(report.to_json())
    else:
        print(render_run_report(report))
    if args.fail_on_violation and report.violations_observed() > 0:
        print(f"error: run observed {report.violations_observed()} safety "
              f"violation(s) (--fail-on-violation)", file=sys.stderr)
        return 1
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from ..attack import AttackConfig, find_attack

    faults = [name for chunk in args.faults
              for name in chunk.split(",") if name]
    config = AttackConfig(
        system=args.system,
        property_id=args.property_id,
        faults=tuple(faults) if faults else ("equivocation",),
        nodes=args.nodes,
        duration=args.duration,
        seed=args.seed,
        attempts=args.attempts,
        mode=args.mode,
        minimize=not args.no_minimize,
        options=dict(args.option),
        trace=args.trace,
    )
    try:
        result = find_attack(config)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    report = result.report
    json_path, md_path = report.write(args.out)
    if args.as_json:
        print(report.to_json())
    elif report.found:
        violation = report.violation or {}
        print(f"FALSIFIED {report.property_id} on {report.system} "
              f"(attempt {report.attempts}, attack seed "
              f"{report.attack_seed})")
        print(f"  violation: t={violation.get('sim_time', 0.0):.3f}s "
              f"digest={violation.get('state_digest')}")
        print(f"  trace: {report.original_steps} -> "
              f"{report.minimized_steps} step(s) after "
              f"{len(report.reductions)} reduction(s)")
        replay = report.replay or {}
        print(f"  replay: "
              f"{'verified' if replay.get('verified') else 'MISMATCH'}")
        print(f"  report: {md_path} (+ {json_path})")
    else:
        print(f"no counterexample to {report.property_id} on "
              f"{report.system} in {report.attempts} attempt(s)")
        print(f"  report: {md_path} (+ {json_path})")
    return 0 if report.found else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from ..obs import (
        causal_chain,
        filter_records,
        format_records,
        summarize_records,
        validate_trace,
        write_chrome_trace,
    )
    from ..obs.trace_tools import read_trace

    try:
        records = read_trace(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    problems = validate_trace(records)
    if args.validate:
        if problems:
            for problem in problems:
                print(f"error: {problem}", file=sys.stderr)
            return 1
        print(f"{args.file}: schema v1 OK ({len(records)} records)")
        return 0
    for problem in problems:
        print(f"warning: {problem}", file=sys.stderr)

    if args.chrome is not None:
        written = write_chrome_trace(records, args.chrome)
        print(f"wrote {written} trace events to {args.chrome} "
              f"(open in chrome://tracing or Perfetto)")
        return 0

    if args.why_steering is not None:
        chain = causal_chain(records, args.why_steering)
        if not chain:
            print(f"no steering activity recorded for node "
                  f"{args.why_steering}", file=sys.stderr)
            return 1
        if args.as_json:
            print(json.dumps(chain, indent=2, sort_keys=True))
        else:
            print(format_records(chain, limit=len(chain)))
        return 0

    filtered = filter_records(records, node=args.node, kind=args.kind,
                              contains=args.contains)
    has_filter = any(value is not None
                     for value in (args.node, args.kind, args.contains))
    if args.summary or not has_filter:
        summary = summarize_records(records if not has_filter else filtered)
        if args.as_json:
            print(json.dumps({
                "total_records": summary.total_events,
                "by_kind": summary.by_kind,
                "by_node": summary.by_node,
                "first_time": summary.first_time,
                "last_time": summary.last_time,
            }, indent=2, sort_keys=True))
            return 0
        meta = records[0] if records and records[0].get("kind") == "meta" \
            else {}
        if meta:
            print(f"{args.file}: {meta.get('system')} "
                  f"seed={meta.get('seed')} mode={meta.get('mode')} "
                  f"nodes={meta.get('nodes')}")
        print(f"records: {summary.total_events} spanning "
              f"{summary.duration():g}s simulated")
        for kind, count in sorted(summary.by_kind.items()):
            print(f"  {kind:<16} {count}")
        return 0
    if args.as_json:
        print(json.dumps(filtered, indent=2, sort_keys=True))
    else:
        print(format_records(filtered, limit=args.limit))
    return 0


def _parse_durations(raw_values: Sequence[str]) -> tuple[Optional[float], dict]:
    """``--duration`` values: a plain number and/or ``system=seconds``."""
    scalar: Optional[float] = None
    per_system: dict[str, float] = {}
    for raw in raw_values:
        if "=" in raw:
            system, value = raw.split("=", 1)
            per_system[system] = float(value)
        else:
            scalar = float(raw)
    return scalar, per_system


def _cmd_campaign(args: argparse.Namespace) -> int:
    from ..campaign import (
        CampaignSpec,
        parse_axes,
        render_campaign_report,
        run_campaign,
    )

    # --axes is repeatable, including for the same key: merge repeated
    # values instead of letting the last one silently win.
    merged_axes: dict[str, str] = {}
    for key, values in args.axes:
        merged_axes[key] = (f"{merged_axes[key]},{values}"
                            if key in merged_axes else values)
    try:
        axis_kwargs = parse_axes(merged_axes)
        scalar_duration, per_system = _parse_durations(args.duration)
    except ValueError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    spec = CampaignSpec(
        nodes=args.nodes,
        duration=scalar_duration,
        durations=per_system,
        churn=args.churn,
        fault_seed=args.fault_seed,
        **axis_kwargs,
    )

    log = progress_logger()

    def progress(record: dict) -> None:
        # Progress goes through the always-on stderr progress logger so
        # --json keeps stdout machine-readable.
        run = record["run"]
        if record["status"] == "ok":
            summary = record["summary"]
            detail = (f"injected={summary['faults_injected']:<3} "
                      f"observed={summary['violations_observed']}")
        else:
            detail = (record["error"] or "").strip().splitlines()[-1]
        log.info("%-5s %-48s %s (%.1fs)", record["status"], run["run_id"],
                 detail, record["wall_clock_seconds"])

    try:
        report = run_campaign(spec, jobs=args.jobs, out=args.out,
                              resume=args.resume, progress=progress)
    except ValueError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.markdown_summary:
        summary_dir = os.path.dirname(args.markdown_summary)
        if summary_dir:
            os.makedirs(summary_dir, exist_ok=True)
        with open(args.markdown_summary, "w", encoding="utf-8") as handle:
            handle.write(render_campaign_report(report, markdown=True) + "\n")
    if args.as_json:
        print(report.to_json())
    else:
        print(render_campaign_report(report))

    status = 0
    if report.failed:
        print(f"error: {report.failed}/{report.run_count} campaign run(s) "
              f"failed", file=sys.stderr)
        status = 1
    if args.require_faults:
        missing = report.faultless_runs()
        if missing:
            print("error: fault presets requested but nothing injected in: "
                  + ", ".join(missing), file=sys.stderr)
            status = 1
    if args.fail_on_violation and report.violations_observed() > 0:
        print(f"error: campaign observed {report.violations_observed()} "
              f"safety violation(s) (--fail-on-violation)", file=sys.stderr)
        status = 1
    return status


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    configure_logging(getattr(args, "verbose", 0))
    if args.command == "list":
        return _cmd_list(args.as_json)
    if args.command == "faults":
        return _cmd_faults(args.as_json)
    if args.command == "properties":
        return _cmd_properties(args.pattern, args.as_json)
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "trace":
        return _cmd_trace(args)
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
