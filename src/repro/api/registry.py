"""System registry: the plugin surface behind the unified experiment API.

A :class:`SystemSpec` describes everything the harness needs to run a
system-under-test — how to build its protocol for a set of addresses, which
safety properties to check, what the model checker may explore, and the
scripted scenarios the paper's figures are built from.  The four bundled
systems (RandTree, Chord, Paxos, Bullet') register themselves from their
``spec`` modules; external code can add further systems with
:func:`register_system`::

    from repro.api import Experiment, get_system, list_systems

    for spec in list_systems():
        print(spec.name, "-", spec.summary)
    report = Experiment("randtree").nodes(8).crystalball("debug").run()
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from ..mc.search import SearchBudget
from ..mc.transition import TransitionConfig
from ..properties import Property, select_properties
from ..runtime.address import Address
from ..runtime.protocol import Protocol
from ..workload import WorkloadSpec

#: ``protocol_factory(addresses, options) -> per-node factory`` — given the
#: experiment's member addresses and system-specific options, return the
#: zero-argument factory the simulator calls for every node.
ProtocolFactoryBuilder = Callable[
    [Sequence[Address], Mapping[str, Any]], Callable[[], Protocol]]


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, scripted experiment of a registered system.

    ``run`` executes the scenario and returns a
    :class:`~repro.api.report.RunReport`; it accepts ``mode`` (a
    :class:`~repro.core.controller.Mode`), ``seed`` and arbitrary
    scenario-specific keyword options.  ``build``, when present, returns the
    underlying scripted object (e.g. a figure scenario with its
    ``global_state()``) for callers that drive the search themselves.
    """

    name: str
    description: str
    run: Callable[..., Any]
    build: Optional[Callable[..., Any]] = None


@dataclass(frozen=True)
class SystemSpec:
    """Declarative description of one system-under-test."""

    name: str
    summary: str
    protocol_factory: ProtocolFactoryBuilder
    #: Default property set checked by live runs of this system, in check
    #: order (order is load-bearing: searches report the first violation
    #: found, and steering decisions follow from it).
    properties: tuple[Property, ...]
    #: Namespace prefix of this system's ids in the global property
    #: registry (``None`` falls back to the system name); the registry may
    #: hold more ids under the namespace than ``properties`` checks by
    #: default — opt-in liveness properties, for example.
    property_namespace: Optional[str] = None
    #: Factory (not an instance) so no two experiments share mutable config.
    transition_factory: Callable[[], TransitionConfig] = TransitionConfig
    scenarios: Mapping[str, ScenarioSpec] = field(default_factory=dict)
    #: Named open-loop workloads of this system (see :mod:`repro.workload`),
    #: registered the way scenarios are and selected with
    #: ``Experiment.workload(...)`` / ``run --workload`` / the campaign
    #: ``workloads=`` axis.
    workloads: Mapping[str, "WorkloadSpec"] = field(default_factory=dict)
    default_nodes: int = 6
    default_duration: float = 300.0
    tick_interval: float = 10.0
    #: Application call used for staggered joins (None = the protocol starts
    #: by itself, e.g. a push-based source).
    join_call: Optional[str] = "join"
    join_spacing: float = 5.0
    supports_churn: bool = True
    default_churn_interval: Optional[float] = 60.0
    #: Default consequence-prediction budget for live runs of this system.
    search_budget_factory: Optional[Callable[[], SearchBudget]] = None
    #: Custom initial scheduling (e.g. Paxos proposals); receives
    #: ``(simulator, addresses, options)`` and replaces the join schedule.
    schedule: Optional[Callable[..., None]] = None
    #: System-specific outcome extraction: ``collect(simulator) -> dict``
    #: merged into ``RunReport.outcome`` (e.g. chosen values, completions).
    collect: Optional[Callable[..., dict]] = None
    #: Protocol-aware byzantine payload mutator
    #: ``(message, rng, variant) -> Message | None`` used by the tampering
    #: and equivocation faults (see :mod:`repro.faults.byzantine`); None
    #: falls back to the generic integer perturbation.
    message_mutator: Optional[Callable[..., Any]] = None

    def scenario(self, name: str) -> ScenarioSpec:
        try:
            return self.scenarios[name]
        except KeyError:
            known = ", ".join(sorted(self.scenarios)) or "<none>"
            raise KeyError(
                f"system {self.name!r} has no scenario {name!r} "
                f"(known scenarios: {known})") from None

    def workload(self, name: str) -> "WorkloadSpec":
        try:
            return self.workloads[name]
        except KeyError:
            known = ", ".join(sorted(self.workloads)) or "<none>"
            raise KeyError(
                f"system {self.name!r} has no workload {name!r} "
                f"(known workloads: {known})") from None

    def registered_properties(self) -> list[Property]:
        """Everything registered under this system's property namespace.

        A superset of :attr:`properties`: includes the opt-in properties
        (bounded liveness, experimental invariants) selectable with
        ``Experiment.properties("<namespace>.*")``.
        """
        namespace = self.property_namespace or self.name
        return select_properties(f"{namespace}.*")


_REGISTRY: dict[str, SystemSpec] = {}

#: Spec modules of the bundled systems; importing one registers its system.
_BUILTIN_SPEC_MODULES = (
    "repro.systems.randtree.spec",
    "repro.systems.chord.spec",
    "repro.systems.paxos.spec",
    "repro.systems.bulletprime.spec",
    "repro.systems.crdtset.spec",
    "repro.systems.kvstore.spec",
)
_builtins_loaded = False


def _ensure_builtins() -> None:
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    for module in _BUILTIN_SPEC_MODULES:
        importlib.import_module(module)


def check_options(system: str, options: Mapping[str, Any],
                  allowed: Sequence[str]) -> None:
    """Reject unknown live-run option keys instead of silently ignoring them.

    Called by the bundled protocol factories so a typo'd option
    (``fix_recoverytimer=True``) fails loudly rather than running the
    experiment with the option silently dropped.
    """
    unknown = set(options) - set(allowed)
    if unknown:
        raise ValueError(
            f"unknown option(s) for a {system!r} live run: "
            f"{sorted(unknown)} (accepted: {sorted(allowed)})")


def register_system(spec: SystemSpec, *, replace: bool = False) -> SystemSpec:
    """Add ``spec`` to the registry (idempotent for identical re-imports)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing is not spec and not replace:
        raise ValueError(f"system {spec.name!r} is already registered; "
                         "pass replace=True to override")
    _REGISTRY[spec.name] = spec
    return spec


def unregister_system(name: str) -> None:
    """Remove a registered system (no-op when absent)."""
    _REGISTRY.pop(name, None)


def get_system(name: str) -> SystemSpec:
    """Look up a registered system by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(spec.name for spec in list_systems()) or "<none>"
        raise KeyError(
            f"unknown system {name!r} (registered systems: {known})") from None


def list_systems() -> list[SystemSpec]:
    """All registered systems, sorted by name."""
    _ensure_builtins()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
