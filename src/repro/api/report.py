"""The structured result of every experiment: :class:`RunReport`.

One report shape replaces the ad-hoc result types the entry paths used to
return (``WorkloadResult``, ``PaxosRunResult``, bare ``report()`` dicts).
It carries the full per-node controller statistics surface, the live
monitor's counts, predicted-vs-avoided accounting and system-specific
outcome fields, and serializes to JSON via
:func:`repro.analysis.reporting.to_jsonable`.

Live handles (simulator, controllers, monitor) stay available on the report
for callers that want to poke at the run afterwards, but are excluded from
the serialized form.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from ..analysis.reporting import to_jsonable

#: Counter fields of ``ControllerStats`` summed into ``RunReport.totals``.
_COUNTER_FIELDS = (
    "ticks", "model_checker_runs", "snapshots_collected",
    "incomplete_snapshots", "checkpoints_taken", "forced_checkpoints",
    "checkpoint_bytes_sent", "checkpoint_requests_sent",
    "checkpoint_responses_sent", "negative_responses_sent",
    "violations_predicted", "steering_modified_behavior",
    "steering_unhelpful", "filters_installed", "filters_triggered",
    "isc_checks", "isc_blocks", "replayed_paths", "replay_reproduced",
)


@dataclass
class NodeReport:
    """Full per-node controller statistics (the complete stats surface)."""

    node: str
    mode: str
    stats: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_controller(cls, controller: Any) -> "NodeReport":
        return cls(node=str(controller.addr),
                   mode=controller.config.mode.value,
                   stats=controller.stats.as_dict())

    def to_dict(self) -> dict[str, Any]:
        return {"node": self.node, "mode": self.mode,
                "stats": to_jsonable(self.stats)}


@dataclass
class RunReport:
    """Everything one experiment run produced."""

    system: str
    scenario: Optional[str] = None
    mode: str = "off"
    #: execution backend the run used ("sim" or "tcp"; see repro.backends).
    backend: str = "sim"
    seed: int = 0
    node_count: int = 0
    simulated_seconds: float = 0.0
    wall_clock_seconds: float = 0.0
    churn_events: int = 0
    nodes: list[NodeReport] = field(default_factory=list)
    #: Live-monitor summary (events checked, inconsistent states, ...).
    monitor: dict[str, Any] = field(default_factory=dict)
    #: System- or scenario-specific results (chosen values, completion
    #: times, search statistics, ...).
    outcome: dict[str, Any] = field(default_factory=dict)
    #: Nemesis summary: injected-fault count, per-fault-type breakdown and
    #: the (bounded) schedule of fault events (see repro.faults).
    faults: dict[str, Any] = field(default_factory=dict)
    #: ``repro.obs`` metrics snapshot (counters/gauges/histograms) when the
    #: run had metrics enabled; empty otherwise.  Histogram values carry
    #: wall-clock timings and are excluded from deterministic comparisons.
    metrics: dict[str, Any] = field(default_factory=dict)
    #: Open-loop workload summary (requests injected/completed/skipped and
    #: the traffic shape) when the run drove a workload; empty otherwise.
    workload: dict[str, Any] = field(default_factory=dict)

    # Live handles, excluded from serialization.
    simulator: Any = field(default=None, repr=False, compare=False)
    controllers: dict = field(default_factory=dict, repr=False, compare=False)
    live_monitor: Any = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------- aggregation

    def total(self, counter: str) -> int:
        """Sum one controller counter over all nodes."""
        return sum(int(node.stats.get(counter, 0)) for node in self.nodes)

    def totals(self) -> dict[str, int]:
        """All controller counters summed over the deployment."""
        return {name: self.total(name) for name in _COUNTER_FIELDS}

    def total_predicted(self) -> int:
        return self.total("violations_predicted")

    def total_steered(self) -> int:
        return self.total("steering_modified_behavior")

    def total_unhelpful(self) -> int:
        return self.total("steering_unhelpful")

    def total_isc_blocks(self) -> int:
        return self.total("isc_blocks")

    def total_filter_triggers(self) -> int:
        return self.total("filters_triggered")

    def checkpoint_bytes(self) -> int:
        return self.total("checkpoint_bytes_sent")

    def distinct_violations_found(self) -> set[str]:
        found: set[str] = set()
        for node in self.nodes:
            found |= set(node.stats.get("distinct_violations", ()))
        return found

    def live_inconsistent_states(self) -> int:
        return int(self.monitor.get("inconsistent_states", 0))

    def faults_injected(self) -> int:
        """Number of fault events the nemesis actually injected."""
        return int(self.faults.get("faults_injected", 0))

    def fault_breakdown(self) -> dict[str, Any]:
        """Per-fault-type ``{injected, healed, skipped}`` counts."""
        return dict(self.faults.get("by_type", {}))

    def violations_observed(self) -> int:
        """Violations this run actually hit (not merely predicted) — the
        quantity ``--fail-on-violation`` gates on.

        The exact semantics, in order:

        1. the live monitor's ``inconsistent_states`` count — events after
           which at least one *safety* property was violated in the live
           global state (a persistent violation counts once per event it
           persists through, matching Section 5.4.1's "goes through N
           states that contain inconsistencies");
        2. plus ``outcome["violations"]`` — the violating states an
           *offline* search (a scripted figure scenario) found, since
           those runs have no live monitor;
        3. plus the monitor's ``liveness_violations`` — expired bounded
           ``eventually``/``leads_to`` obligations, which never appear in
           ``inconsistent_states``;
        4. the scripted scenarios' ``violation_occurred`` flag is partially
           derived from the same monitor counts, so it only contributes
           (as 1) when everything above is zero — e.g. Paxos disagreement
           in a scenario whose monitor never flagged a state.

        Predicted-but-avoided violations (``violations_predicted``,
        steering/ISC accounting) are deliberately excluded: prediction is
        the product working, not the system failing.
        """
        count = self.live_inconsistent_states()
        count += int(self.outcome.get("violations") or 0)
        count += int(self.monitor.get("liveness_violations") or 0)
        if count == 0 and self.outcome.get("violation_occurred"):
            count = 1
        return count

    def violations_by_property(self) -> dict[str, int]:
        """Observed violations per property id, sorted by id.

        Live runs contribute the monitor's per-property *episode* counts
        (one per ``(property, node)`` violation stretch, safety and
        liveness alike); offline scenario runs contribute the per-property
        counts of the search's violating states.
        """
        merged: dict[str, int] = {}
        for source in (self.monitor.get("violations_by_property") or {},
                       self.outcome.get("violations_by_property") or {}):
            for name, count in source.items():
                merged[name] = merged.get(name, 0) + int(count)
        return dict(sorted(merged.items()))

    def violations_by_severity(self) -> dict[str, int]:
        """Monitor violation episodes per severity, sorted by name."""
        return dict(sorted(
            (str(key), int(value))
            for key, value in (self.monitor.get("by_severity") or {}).items()))

    def accounting(self) -> dict[str, int]:
        """Predicted-vs-avoided bookkeeping (Sections 5.4.1 and 5.4.2)."""
        steered = self.total_steered()
        blocked = self.total_isc_blocks()
        return {
            "violations_predicted": self.total_predicted(),
            "steering_modified_behavior": steered,
            "steering_unhelpful": self.total_unhelpful(),
            "isc_blocks": blocked,
            "violations_avoided": steered + blocked,
            "live_inconsistent_states": self.live_inconsistent_states(),
        }

    # ----------------------------------------------------------- serialization

    def requests_injected(self) -> int:
        """Workload requests injected (0 for workload-free runs)."""
        return int(self.workload.get("requests_injected", 0))

    def requests_completed(self) -> int:
        """Workload requests whose completion reply was delivered."""
        return int(self.workload.get("requests_completed", 0))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (live handles excluded)."""
        data = {
            "system": self.system,
            "scenario": self.scenario,
            "mode": self.mode,
            "seed": self.seed,
            "node_count": self.node_count,
            "simulated_seconds": self.simulated_seconds,
            "wall_clock_seconds": self.wall_clock_seconds,
            "churn_events": self.churn_events,
            "totals": self.totals(),
            "accounting": self.accounting(),
            "properties": {
                "violations_by_property": self.violations_by_property(),
                "by_severity": self.violations_by_severity(),
            },
            "faults": to_jsonable(self.faults),
            "metrics": to_jsonable(self.metrics),
            "monitor": to_jsonable(self.monitor),
            "outcome": to_jsonable(self.outcome),
            "nodes": [node.to_dict() for node in self.nodes],
        }
        # Only workload-driven runs carry the key, so reports serialized
        # before the workload API existed compare bit-identically.
        if self.workload:
            data["workload"] = to_jsonable(self.workload)
        # Same contract for the backend field: sim runs (the universe of
        # reports serialized before backends existed) omit it.
        if self.backend != "sim":
            data["backend"] = self.backend
        return data

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
