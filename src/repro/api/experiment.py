"""The fluent :class:`Experiment` builder and the generic live-run driver.

``Experiment`` is the single front door to the reproduction: pick a
registered system, chain configuration calls, and ``run()`` — either a named
scripted scenario or a generic live deployment with staggered joins, churn
and CrystalBall controllers::

    report = (Experiment("chord")
              .nodes(24)
              .network(loss=0.01)
              .churn(rate=1 / 60)
              .crystalball(mode="steering", engine="parallel")
              .duration(400)
              .run())
    print(report.accounting())

:class:`LiveRun` is the underlying driver; it subsumes the old
``repro.sim.OverlayWorkload`` (kept as a deprecation shim) and always
returns a :class:`~repro.api.report.RunReport`.
"""

from __future__ import annotations

import inspect
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence, Union

from ..backends import backend_names, make_backend
from ..core.consequence import consequence_prediction
from ..core.controller import (
    CheckingPolicy,
    CrystalBallConfig,
    CrystalBallController,
    Mode,
    attach_crystalball,
)
from ..core.monitor import LivePropertyMonitor
from ..faults.base import Fault
from ..faults.byzantine import MutatingFault
from ..faults.nemesis import Nemesis
from ..faults.presets import make_nemesis
from ..mc.search import SearchBudget, SearchResult
from ..obs import JsonlTracer, MetricsRegistry, ObsContext, Tracer
from ..properties import Property, SafetyProperty, resolve_properties
from ..properties.registry import PropertySelector
from ..mc.transition import TransitionConfig, TransitionSystem
from ..runtime.address import Address, make_addresses
from ..runtime.churn import ChurnProcess
from ..runtime.network import NetworkModel
from ..runtime.protocol import Protocol
from ..runtime.simulator import Simulator
from ..workload import OpenLoopDriver, WorkloadSpec
from .registry import ScenarioSpec, SystemSpec, get_system
from .report import NodeReport, RunReport


def parse_mode(mode: Union[Mode, str, None]) -> Mode:
    """Accept a :class:`Mode`, its string value, or ``None`` (= off)."""
    if mode is None:
        return Mode.OFF
    if isinstance(mode, Mode):
        return mode
    try:
        return Mode(str(mode).lower().replace("_", "-"))
    except ValueError:
        known = ", ".join(m.value for m in Mode)
        raise ValueError(f"unknown mode {mode!r} (one of: {known})") from None


def build_run_report(
    *,
    system: str,
    scenario: Optional[str],
    mode: Mode,
    seed: int,
    sim: Simulator,
    controllers: Mapping[Address, CrystalBallController],
    monitor: Optional[LivePropertyMonitor] = None,
    churn_events: int = 0,
    wall_clock_seconds: float = 0.0,
    outcome: Optional[dict] = None,
    nemesis: Optional[Nemesis] = None,
    metrics: Optional[MetricsRegistry] = None,
    workload: Optional[dict] = None,
    backend: str = "sim",
) -> RunReport:
    """Assemble a :class:`RunReport` from the live objects of one run."""
    return RunReport(
        system=system,
        scenario=scenario,
        mode=mode.value,
        backend=backend,
        seed=seed,
        node_count=len(sim.nodes),
        simulated_seconds=sim.now,
        wall_clock_seconds=wall_clock_seconds,
        churn_events=churn_events,
        nodes=[NodeReport.from_controller(controllers[addr])
               for addr in sorted(controllers)],
        monitor=monitor.report() if monitor is not None else {},
        outcome=outcome or {},
        faults=nemesis.report() if nemesis is not None else {},
        metrics=metrics.snapshot() if metrics is not None else {},
        workload=workload or {},
        simulator=sim,
        controllers=dict(controllers),
        live_monitor=monitor,
    )


def warn_scenario_mode_noop(mode: Union[Mode, str, None], scenario: str) -> None:
    """Warn when a steering/ISC mode is requested for an offline search.

    The figure scenarios run consequence prediction from a scripted
    snapshot; there is no live execution to steer, so any mode beyond
    off/debug would silently measure nothing.
    """
    parsed = parse_mode(mode)
    if parsed not in (Mode.OFF, Mode.DEBUG):
        warnings.warn(
            f"scenario {scenario!r} is an offline prediction search; "
            f"mode {parsed.value!r} has no effect on it",
            UserWarning, stacklevel=3)


def report_from_search(
    *,
    system: str,
    scenario: Optional[str],
    result: SearchResult,
    seed: int = 0,
    node_count: int = 0,
    extra_outcome: Optional[dict] = None,
) -> RunReport:
    """Wrap an offline search (a scripted figure scenario) into a report."""
    shortest = result.shortest_violation()
    by_property: dict[str, int] = {}
    for predicted in result.violations:
        name = predicted.violation.property_name
        by_property[name] = by_property.get(name, 0) + 1
    outcome = {
        "states_visited": result.stats.states_visited,
        "max_depth_reached": result.stats.max_depth_reached,
        "elapsed_seconds": result.stats.elapsed_seconds,
        "violations": len(result.violations),
        "properties_violated": sorted(result.unique_property_names()),
        "violations_by_property": dict(sorted(by_property.items())),
        "shortest_violation": (str(shortest.violation)
                               if shortest is not None else None),
        "shortest_path": ([event.describe() for event in shortest.path]
                          if shortest is not None else []),
    }
    outcome.update(extra_outcome or {})
    return RunReport(
        system=system,
        scenario=scenario,
        mode="prediction",
        seed=seed,
        node_count=node_count,
        simulated_seconds=0.0,
        wall_clock_seconds=result.stats.elapsed_seconds,
        outcome=outcome,
    )


def make_search_scenario_runner(
    *,
    system: str,
    scenario: str,
    properties: Sequence[SafetyProperty],
    prepare: Callable[[bool], tuple[Protocol, Any]],
    default_max_states: int,
    default_max_depth: int,
    resets: bool = True,
    max_resets_per_node: int = 1,
) -> Callable[..., RunReport]:
    """Build a :class:`~repro.api.registry.ScenarioSpec` runner that runs
    consequence prediction from a scripted snapshot.

    ``prepare(fixed)`` returns ``(protocol, snapshot)`` — with the paper's
    fixes applied when ``fixed`` is true.  The bundled figure scenarios
    (RandTree Figures 2/9, Chord Figures 10/11, the Bullet' shadow-map
    state) all share this shape.
    """

    def run(*, mode=None, seed: int = 0, fixed: bool = False,
            max_states: int = default_max_states,
            max_depth: int = default_max_depth, **_ignored) -> RunReport:
        warn_scenario_mode_noop(mode, scenario)
        protocol, snapshot = prepare(fixed)
        transition_system = TransitionSystem(
            protocol,
            TransitionConfig(enable_resets=resets,
                             max_resets_per_node=max_resets_per_node))
        result = consequence_prediction(
            transition_system, snapshot, list(properties),
            SearchBudget(max_states=max_states, max_depth=max_depth))
        return report_from_search(system=system, scenario=scenario,
                                  result=result, seed=seed,
                                  node_count=len(snapshot.nodes),
                                  extra_outcome={"fixed": fixed})

    return run


def make_fault_scenario_runner(
    *,
    system: str,
    faults: Sequence[Union[str, "Fault"]] = (),
    faults_factory: Optional[
        Callable[[float, Sequence[Address]], Sequence[Union[str, "Fault"]]]] = None,
    default_nodes: int = 6,
    default_duration: float = 200.0,
    churn: bool = False,
    options: Optional[Mapping[str, Any]] = None,
) -> Callable[..., "RunReport"]:
    """Build a :class:`~repro.api.registry.ScenarioSpec` runner for a named
    live fault scenario.

    The runner drives a generic live run of ``system`` with a nemesis built
    from ``faults`` (preset names / instances) plus whatever
    ``faults_factory(duration, addresses)`` contributes — the factory hook
    exists for faults that target specific members, e.g. crashing the Paxos
    proposer.  Churn is off by default so the named faults are the only
    adversary and the schedule is reproducible from the seed alone.
    """

    def run(*, mode=None, seed: int = 0,
            node_count: int = default_nodes,
            max_time: float = default_duration,
            fault_seed: Optional[int] = None,
            **_ignored) -> "RunReport":
        experiment = (Experiment(system)
                      .nodes(node_count)
                      .duration(max_time)
                      .seed(seed)
                      .mode(parse_mode(mode))
                      .churn(churn))
        fault_list: list[Union[str, Fault]] = list(faults)
        if faults_factory is not None:
            fault_list.extend(
                faults_factory(max_time, make_addresses(node_count)))
        experiment.faults(*fault_list, seed=fault_seed)
        if options:
            experiment.options(**options)
        return experiment.run()

    return run


@dataclass
class LiveRun:
    """A live deployment: staggered joins, optional churn, CrystalBall.

    This is the generic driver behind :meth:`Experiment.run`; the legacy
    ``OverlayWorkload`` delegates here.  Field semantics (and the event
    ordering, so seeded runs stay reproducible) match the old workload.
    """

    protocol_factory: Callable[[], Protocol]
    properties: Sequence[Property]
    node_count: int = 6
    duration: float = 600.0
    join_spacing: float = 5.0
    churn_mean_interval: Optional[float] = 60.0
    crystalball_mode: Mode = Mode.OFF
    crystalball_config: Optional[CrystalBallConfig] = None
    #: which nodes run the model checker (None = all when CrystalBall is on).
    checker_nodes: Optional[Sequence[Address]] = None
    network: Optional[NetworkModel] = None
    seed: int = 0
    tick_interval: float = 10.0
    max_events: int = 500_000
    #: Fault injection: preset names and/or Fault instances expanded into a
    #: seeded Nemesis for this run (see repro.faults).
    faults: Sequence[Union[str, Fault]] = ()
    #: Nemesis seed; None derives it from the run seed.
    fault_seed: Optional[int] = None
    #: Quiet period before the first fault (defaults to one join round).
    fault_start_after: Optional[float] = None
    #: Byzantine payload mutator handed to MutatingFault instances that
    #: carry none — normally the system spec's registered protocol-aware
    #: hook (see SystemSpec.message_mutator).
    message_mutator: Optional[Callable[..., Any]] = None
    #: Dirty-node fast path for node-scoped properties in the live monitor
    #: (bit-identical records either way; False forces a full re-check per
    #: event, which is what the monitor-overhead benchmark compares).
    incremental_monitor: bool = True
    address_start: int = 1
    #: application call used for staggered joins; None skips join scheduling.
    join_call: Optional[str] = "join"
    #: open-loop request stream driven through the run (see repro.workload).
    workload: Optional[WorkloadSpec] = None
    #: custom initial scheduling, replaces the join schedule when set.
    schedule: Optional[Callable[[Simulator, Sequence[Address], Mapping], None]] = None
    #: outcome extraction merged into ``RunReport.outcome``.
    collect: Optional[Callable[[Simulator], dict]] = None
    options: Mapping[str, Any] = field(default_factory=dict)
    system_name: str = "custom"
    scenario_name: Optional[str] = None
    #: execution backend: "sim" (default) or "tcp" (real asyncio sockets);
    #: see :mod:`repro.backends`.
    backend: str = "sim"
    #: backend-specific settings (e.g. host/port_base for "tcp"),
    #: validated by the backend class.
    backend_options: Mapping[str, Any] = field(default_factory=dict)
    #: Structured tracing: a JSONL output path or a ready
    #: :class:`~repro.obs.Tracer` instance; None (default) disables it.
    trace: Optional[Union[str, Tracer]] = None
    #: Metrics: True builds a fresh registry snapshotted into
    #: ``RunReport.metrics``; a :class:`~repro.obs.MetricsRegistry`
    #: instance is used as-is; False (default) disables metrics.
    metrics: Union[bool, MetricsRegistry] = False

    def addresses(self) -> list[Address]:
        return make_addresses(self.node_count, start=self.address_start)

    def _build_obs(self) -> ObsContext:
        tracer: Optional[Tracer] = None
        if self.trace is not None:
            tracer = (self.trace if isinstance(self.trace, Tracer)
                      else JsonlTracer(self.trace))
        registry: Optional[MetricsRegistry] = None
        if self.metrics:
            registry = (self.metrics
                        if isinstance(self.metrics, MetricsRegistry)
                        else MetricsRegistry())
        return ObsContext(tracer=tracer, metrics=registry)

    def run(self) -> RunReport:
        started = time.perf_counter()
        addresses = self.addresses()
        network = self.network or NetworkModel()
        obs = self._build_obs()
        sim = make_backend(self.backend, self.protocol_factory, network,
                           seed=self.seed, tick_interval=self.tick_interval,
                           obs=obs, options=self.backend_options)
        if obs.tracer is not None:
            obs.tracer.meta(
                system=self.system_name, scenario=self.scenario_name,
                mode=self.crystalball_mode.value, seed=self.seed,
                nodes=self.node_count, backend=self.backend)
        for addr in addresses:
            sim.add_node(addr)

        controllers: dict[Address, CrystalBallController] = {}
        if self.crystalball_mode is not Mode.OFF:
            if self.crystalball_config is not None:
                # Work on a copy so the caller's config object is never
                # mutated (it may be reused across experiments).
                config = self.crystalball_config.copy()
                config.mode = self.crystalball_mode
            else:
                config = CrystalBallConfig(mode=self.crystalball_mode)
            controllers = attach_crystalball(
                sim, self.properties, config=config, nodes=self.checker_nodes)

        monitor = LivePropertyMonitor(
            self.properties, incremental=self.incremental_monitor).install(sim)

        nemesis: Optional[Nemesis] = None
        if self.faults:
            start_after = (self.fault_start_after
                           if self.fault_start_after is not None
                           else min(self.node_count * self.join_spacing,
                                    self.duration * 0.1))
            nemesis = make_nemesis(
                self.faults,
                duration=self.duration,
                seed=(self.fault_seed if self.fault_seed is not None
                      else self.seed + 13),
                start_after=start_after,
            )
            if self.message_mutator is not None:
                for fault in nemesis.faults:
                    if (isinstance(fault, MutatingFault)
                            and fault.mutator is None):
                        fault.mutator = self.message_mutator
            nemesis.install(sim)

        if self.schedule is not None:
            self.schedule(sim, addresses, self.options)
        elif self.join_call is not None:
            # Staggered joins: the bootstrap node first, then one node every
            # ``join_spacing`` seconds.
            for index, addr in enumerate(addresses):
                sim.schedule_app(1.0 + index * self.join_spacing, addr,
                                 self.join_call, {})

        churn: Optional[ChurnProcess] = None
        if self.churn_mean_interval is not None:
            churn = ChurnProcess(nodes=addresses,
                                 mean_interval=self.churn_mean_interval,
                                 seed=self.seed + 7,
                                 stop_after=self.duration * 0.9)
            churn.install(sim)

        driver: Optional[OpenLoopDriver] = None
        if self.workload is not None:
            driver = OpenLoopDriver(self.workload, addresses,
                                    seed=self.seed).install(sim)

        sim.run(until=self.duration, max_events=self.max_events)
        churn_events = churn.events_injected if churn is not None else 0

        if nemesis is not None:
            # Strip still-open fault windows so a caller-supplied network
            # model carries no residue into the next run.
            nemesis.teardown(sim)

        # Liveness obligations whose deadline passed after the last event
        # still count; finalize is a no-op for pure-safety property sets.
        monitor.finalize(sim.now)

        if obs.tracer is not None:
            obs.tracer.run_end(sim.now, sim.events_executed)
        obs.close()

        outcome = self.collect(sim) if self.collect is not None else {}
        wire_report = getattr(sim, "wire_report", None)
        if wire_report is not None:
            outcome = {**outcome, "wire": wire_report()}
        return build_run_report(
            system=self.system_name,
            scenario=self.scenario_name,
            mode=self.crystalball_mode,
            seed=self.seed,
            sim=sim,
            controllers=controllers,
            monitor=monitor,
            churn_events=churn_events,
            wall_clock_seconds=time.perf_counter() - started,
            outcome=outcome,
            nemesis=nemesis,
            metrics=obs.metrics,
            workload=driver.report() if driver is not None else None,
            backend=self.backend,
        )


class Experiment:
    """Fluent builder over a registered :class:`SystemSpec`."""

    def __init__(self, system: Union[str, SystemSpec]) -> None:
        self._spec = get_system(system) if isinstance(system, str) else system
        self._nodes = self._spec.default_nodes
        self._duration = self._spec.default_duration
        self._tick_interval = self._spec.tick_interval
        self._seed = 0
        self._mode = Mode.OFF
        self._cb_config: Optional[CrystalBallConfig] = None
        self._cb_kwargs: dict[str, Any] = {}
        self._checker_nodes: Optional[Sequence[Address]] = None
        self._network: Optional[NetworkModel] = None
        #: simple network kwargs (rtt/loss/jitter/rst_loss) when network()
        #: was configured from scalars — what a sweep can carry to workers;
        #: None means an explicit NetworkModel instance was supplied.
        self._network_params: Optional[dict[str, float]] = {}
        self._churn_interval = (self._spec.default_churn_interval
                                if self._spec.supports_churn else None)
        self._scenario: Optional[str] = None
        self._options: dict[str, Any] = {}
        self._faults: list[Union[str, Fault]] = []
        self._fault_seed: Optional[int] = None
        self._fault_start_after: Optional[float] = None
        self._property_selectors: Optional[list[PropertySelector]] = None
        self._property_exclude: list[str] = []
        self._incremental_monitor = True
        self._max_events = 500_000
        self._workload: Optional[WorkloadSpec] = None
        #: registered name behind _workload (None for an inline spec) and
        #: the traffic overrides applied — what a sweep can carry.
        self._workload_name: Optional[str] = None
        self._workload_overrides: dict[str, Any] = {}
        self._trace: Optional[Union[str, Tracer]] = None
        self._metrics = False
        self._backend = "sim"
        self._backend_options: dict[str, Any] = {}
        #: builder knobs the caller set explicitly (used to forward what a
        #: scripted scenario can honor and warn about what it cannot).
        self._explicit: set[str] = set()

    @property
    def spec(self) -> SystemSpec:
        return self._spec

    # ---------------------------------------------------------- configuration

    def nodes(self, count: int) -> "Experiment":
        if count < 1:
            raise ValueError("an experiment needs at least one node")
        self._nodes = count
        self._explicit.add("nodes")
        return self

    def duration(self, seconds: float) -> "Experiment":
        self._duration = float(seconds)
        self._explicit.add("duration")
        return self

    def ticks(self, count: int) -> "Experiment":
        """Duration expressed in controller tick intervals."""
        self._duration = float(count) * self._tick_interval
        self._explicit.add("duration")
        return self

    def seed(self, seed: int) -> "Experiment":
        self._seed = int(seed)
        return self

    def max_events(self, count: int) -> "Experiment":
        self._max_events = int(count)
        self._explicit.add("max_events")
        return self

    def network(self, model: Optional[NetworkModel] = None, *,
                rtt: Optional[float] = None,
                loss: Optional[float] = None,
                jitter: Optional[float] = None,
                rst_loss: Optional[float] = None) -> "Experiment":
        """Use an explicit :class:`NetworkModel` or tweak the default one."""
        self._explicit.add("network")
        if model is not None:
            self._network = model
            self._network_params = None
            return self
        self._network_params = {
            key: value
            for key, value in (("rtt", rtt), ("loss", loss),
                               ("jitter", jitter), ("rst_loss", rst_loss))
            if value is not None}
        kwargs: dict[str, Any] = {}
        if rtt is not None:
            kwargs["default_rtt"] = rtt
        if jitter is not None:
            kwargs["jitter"] = jitter
        if rst_loss is not None:
            kwargs["rst_loss_probability"] = rst_loss
        if loss is not None:
            kwargs["loss_fn"] = lambda src, dst, rng: loss
        self._network = NetworkModel(**kwargs)
        return self

    def churn(self, enabled: bool = True, *,
              rate: Optional[float] = None,
              interval: Optional[float] = None) -> "Experiment":
        """Configure churn: ``rate`` in events/second or a mean ``interval``."""
        self._explicit.add("churn")
        if not enabled:
            self._churn_interval = None
            return self
        if rate is not None and interval is not None:
            raise ValueError("pass either rate or interval, not both")
        if rate is not None:
            if rate <= 0:
                raise ValueError("churn rate must be positive")
            self._churn_interval = 1.0 / rate
        elif interval is not None:
            self._churn_interval = float(interval)
        elif self._churn_interval is None:
            self._churn_interval = self._spec.default_churn_interval or 60.0
        return self

    def faults(self, *faults: Union[str, Fault],
               partition_every: Optional[float] = None,
               heal_after: Optional[float] = None,
               seed: Optional[int] = None,
               start_after: Optional[float] = None) -> "Experiment":
        """Inject faults during the run (see :mod:`repro.faults`).

        Positional arguments are preset names (``"partition"``,
        ``"chaos"``, ...) and/or explicit :class:`~repro.faults.Fault`
        instances.  ``partition_every``/``heal_after`` are a shorthand for
        the most common adversary::

            Experiment("paxos").faults(partition_every=120, heal_after=20)

        ``seed`` fixes the nemesis seed independently of the run seed;
        ``start_after`` delays the first injection.
        """
        from ..faults.types import Partition

        if faults or partition_every is not None:
            self._explicit.add("faults")
        self._faults.extend(faults)
        if partition_every is not None:
            self._faults.append(
                Partition(every=partition_every, duration=heal_after))
        elif heal_after is not None:
            raise ValueError("heal_after needs partition_every")
        if seed is not None:
            self._fault_seed = int(seed)
        if start_after is not None:
            self._fault_start_after = float(start_after)
        return self

    def crystalball(self, mode: Union[Mode, str, None] = None, *,
                    engine: Optional[str] = None,
                    budget: Optional[SearchBudget] = None,
                    transition: Optional[TransitionConfig] = None,
                    config: Optional[CrystalBallConfig] = None,
                    portfolio: Optional[bool] = None,
                    nodes: Optional[Sequence[Address]] = None,
                    immediate_check: Optional[bool] = None,
                    check_filter_safety: Optional[bool] = None,
                    checking: Optional[CheckingPolicy] = None,
                    delta_checkpoints: Optional[bool] = None,
                    batched_control_plane: Optional[bool] = None,
                    ) -> "Experiment":
        """Attach CrystalBall controllers in the given mode.

        ``mode`` defaults to the explicit config's mode when ``config`` is
        passed, and to debug otherwise.  The scale knobs: ``checking``
        samples deep checking across controllers (a
        :class:`~repro.core.controller.CheckingPolicy`),
        ``delta_checkpoints`` accounts checkpoint answers as deltas
        against the peer's last-seen state, and ``batched_control_plane``
        fans snapshot-gather requests out over UDP in one batch.
        """
        if config is not None and any(
                value is not None for value in (engine, budget, transition,
                                                portfolio, immediate_check,
                                                check_filter_safety, checking,
                                                delta_checkpoints,
                                                batched_control_plane)):
            raise ValueError(
                "pass either an explicit config or individual crystalball "
                "settings (engine/budget/transition/...), not both")
        if mode is None:
            self._mode = config.mode if config is not None else Mode.DEBUG
        else:
            self._mode = parse_mode(mode)
        self._cb_config = config
        self._checker_nodes = nodes
        self._cb_kwargs = {}
        if engine is not None:
            self._cb_kwargs["engine"] = engine
            self._explicit.add("engine")
        if budget is not None:
            self._cb_kwargs["search_budget"] = budget
        if transition is not None:
            self._cb_kwargs["transition"] = transition
            self._explicit.add("transition")
        if portfolio is not None:
            self._cb_kwargs["portfolio_mode"] = portfolio
            self._explicit.add("portfolio")
        if immediate_check is not None:
            self._cb_kwargs["immediate_check"] = immediate_check
            self._explicit.add("immediate_check")
        if check_filter_safety is not None:
            self._cb_kwargs["check_filter_safety"] = check_filter_safety
            self._explicit.add("check_filter_safety")
        if checking is not None:
            self._cb_kwargs["checking"] = checking
            self._explicit.add("checking")
        if delta_checkpoints is not None:
            self._cb_kwargs["delta_checkpoints"] = delta_checkpoints
            self._explicit.add("delta_checkpoints")
        if batched_control_plane is not None:
            self._cb_kwargs["batched_control_plane"] = batched_control_plane
            self._explicit.add("batched_control_plane")
        if nodes is not None:
            self._explicit.add("checker_nodes")
        return self

    def mode(self, mode: Union[Mode, str]) -> "Experiment":
        """Shorthand for :meth:`crystalball` keeping other settings."""
        self._mode = parse_mode(mode)
        return self

    def workload(self, workload: Union[str, WorkloadSpec, None], *,
                 rate: Optional[float] = None,
                 burst: Optional[int] = None,
                 keys: Optional[int] = None,
                 distribution: Optional[str] = None,
                 start: Optional[float] = None,
                 duration: Optional[float] = None) -> "Experiment":
        """Drive the live run with an open-loop request stream.

        ``workload`` is a workload name registered on the system (see
        ``python -m repro list``) or an explicit
        :class:`~repro.workload.WorkloadSpec`; ``None`` turns the stream
        back off.  The keyword arguments override the registered traffic
        shape (see :class:`~repro.workload.TrafficSpec`)::

            report = (Experiment("chord")
                      .nodes(1000)
                      .workload("lookups", rate=2000, burst=50)
                      .run())
            print(report.workload["requests_completed"])
        """
        if workload is None:
            self._workload = None
            self._workload_name = None
            self._workload_overrides = {}
            self._explicit.discard("workload")
            return self
        if isinstance(workload, str):
            spec = self._spec.workload(workload)
            self._workload_name = workload
        else:
            spec = workload
            self._workload_name = None
        overrides = {
            key: value
            for key, value in (("rate", rate), ("burst", burst),
                               ("keys", keys),
                               ("key_distribution", distribution),
                               ("start", start), ("duration", duration))
            if value is not None}
        self._workload_overrides = overrides
        self._workload = spec.with_traffic(**overrides) if overrides else spec
        self._explicit.add("workload")
        return self

    def backend(self, name: str, **options: Any) -> "Experiment":
        """Select the execution backend for the live run.

        ``"sim"`` (the default) is the discrete-event simulator; ``"tcp"``
        runs every node behind a real asyncio TCP socket, shipping service
        and control messages — checkpoints included — as length-prefixed
        compact-bytes frames (see :mod:`repro.backends`).  The deterministic
        coordinator keeps seeded runs equivalent across backends.  Keyword
        arguments are backend-specific options, e.g.::

            Experiment("randtree").backend("tcp", host="127.0.0.1")
        """
        known = backend_names()
        if name not in known:
            raise ValueError(
                f"unknown backend {name!r} (one of: {', '.join(known)})")
        self._backend = name
        self._backend_options = dict(options)
        if name != "sim" or options:
            self._explicit.add("backend")
        else:
            self._explicit.discard("backend")
        return self

    def scenario(self, name: str) -> "Experiment":
        """Run the named scripted scenario instead of a generic live run."""
        self._spec.scenario(name)  # fail fast on unknown names
        self._scenario = name
        return self

    def options(self, **options: Any) -> "Experiment":
        """System- or scenario-specific options (e.g. ``fixed=True``)."""
        self._options.update(options)
        return self

    def properties(self, *selectors: PropertySelector,
                   exclude: Sequence[str] = ()) -> "Experiment":
        """Select which properties the run checks, replacing the system's
        default set.

        Selectors are glob patterns over registered property ids
        (``"randtree.*"``, ``"*.agreement"``, exact ids) and/or property
        instances; ``exclude`` patterns are applied after inclusion::

            Experiment("randtree").properties(
                "randtree.*", exclude=["randtree.recovery_timer_running"])

        Patterns resolve against the global registry when the experiment
        runs, in registration order (so a namespace selection reproduces
        the system's historical check order).  A pattern matching nothing
        raises; an explicit empty selection (no arguments) disables
        property checking entirely.
        """
        self._property_selectors = list(selectors)
        self._property_exclude = list(exclude)
        self._explicit.add("properties")
        return self

    def trace(self, path: Union[str, Tracer, None]) -> "Experiment":
        """Record a structured JSONL execution trace of the live run.

        ``path`` is the output file; inspect it afterwards with
        ``python -m repro trace <path>`` (summary, filtering, Chrome
        export, causal-chain queries).  A :class:`~repro.obs.Tracer`
        instance is also accepted (e.g. ``MemoryTracer`` in tests);
        ``None`` turns tracing back off.  Tracing never perturbs the run:
        a seeded run is bit-identical with tracing on or off.
        """
        self._trace = path
        if path is not None:
            self._explicit.add("trace")
        else:
            self._explicit.discard("trace")
        return self

    def metrics(self, enabled: bool = True) -> "Experiment":
        """Collect ``repro.obs`` metrics into ``RunReport.metrics``.

        Counters and gauges are deterministic per seed; histograms hold
        wall-clock timings (controller phases, model-checker runs).
        """
        self._metrics = bool(enabled)
        if enabled:
            self._explicit.add("metrics")
        else:
            self._explicit.discard("metrics")
        return self

    def incremental_monitor(self, enabled: bool = True) -> "Experiment":
        """Toggle the live monitor's dirty-node fast path (default on)."""
        self._incremental_monitor = bool(enabled)
        if not enabled:
            # Non-default setting: scenario runs and sweeps cannot honor
            # it and must warn instead of silently measuring the fast path.
            self._explicit.add("incremental_monitor")
        else:
            self._explicit.discard("incremental_monitor")
        return self

    def resolved_properties(self) -> list[Property]:
        """The property set a live run of this experiment would check."""
        if self._property_selectors is None:
            return list(self._spec.properties)
        return resolve_properties(self._property_selectors,
                                  exclude=self._property_exclude)

    # ------------------------------------------------------------------- run

    def _crystalball_config(self) -> Optional[CrystalBallConfig]:
        if self._mode is Mode.OFF:
            return None
        if self._cb_config is not None:
            return self._cb_config
        kwargs = dict(self._cb_kwargs)
        if "search_budget" not in kwargs and self._spec.search_budget_factory:
            kwargs["search_budget"] = self._spec.search_budget_factory()
        kwargs.setdefault("transition", self._spec.transition_factory())
        return CrystalBallConfig(mode=self._mode, **kwargs)

    def _scenario_kwargs(self, scenario: ScenarioSpec) -> dict[str, Any]:
        """Builder settings forwarded into a scripted scenario run.

        Scenario runners script their own deployment, so only the subset of
        the builder surface the runner names in its signature translates;
        anything explicitly set that the scenario cannot honor is warned
        about rather than silently dropped.
        """
        named = {
            parameter.name
            for parameter in inspect.signature(scenario.run).parameters.values()
            if parameter.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                                  inspect.Parameter.KEYWORD_ONLY)}
        # mode/seed are reserved: they come from the builder, never options.
        accepted = named - {"mode", "seed"}
        unknown = set(self._options) - accepted
        if unknown:
            raise ValueError(
                f"unknown option(s) for scenario {self._scenario!r}: "
                f"{sorted(unknown)} (accepted: {sorted(accepted)}; set mode "
                f"and seed through the builder, not options)")
        kwargs = dict(self._options)
        unsupported = self._explicit & {
            "network", "churn", "engine", "portfolio", "max_events",
            "properties", "transition", "immediate_check",
            "check_filter_safety", "checker_nodes", "faults",
            "incremental_monitor", "trace", "metrics", "workload",
            "checking", "delta_checkpoints", "batched_control_plane",
            "backend"}

        def forward(setting: str, key: str, value: Any) -> None:
            if key in named:
                kwargs.setdefault(key, value)
            else:
                unsupported.add(setting)

        if "nodes" in self._explicit:
            forward("nodes", "node_count", self._nodes)
        if "duration" in self._explicit:
            forward("duration", "max_time", self._duration)
        budget = self._cb_kwargs.get("search_budget")
        if budget is None and self._cb_config is not None:
            budget = self._cb_config.search_budget
        if budget is not None:
            if budget.max_states is not None:
                forward("budget", "max_states", budget.max_states)
            if budget.max_depth is not None:
                forward("budget", "max_depth", budget.max_depth)
        if self._fault_seed is not None:
            # Fault scenarios accept the nemesis seed; anything else warns.
            forward("fault_seed", "fault_seed", self._fault_seed)
        if unsupported:
            warnings.warn(
                f"scenario {self._scenario!r} runs a scripted schedule and "
                f"ignores these builder settings: {sorted(unsupported)}",
                UserWarning, stacklevel=3)
        return kwargs

    def run(self) -> RunReport:
        if self._scenario is not None:
            scenario = self._spec.scenario(self._scenario)
            report = scenario.run(mode=self._mode, seed=self._seed,
                                  **self._scenario_kwargs(scenario))
            report.system = self._spec.name
            report.scenario = self._scenario
            return report

        properties = self.resolved_properties()
        live = LiveRun(
            protocol_factory=self._spec.protocol_factory(
                self.addresses(), self._options),
            properties=properties,
            node_count=self._nodes,
            duration=self._duration,
            join_spacing=self._spec.join_spacing,
            churn_mean_interval=self._churn_interval,
            crystalball_mode=self._mode,
            crystalball_config=self._crystalball_config(),
            checker_nodes=self._checker_nodes,
            network=self._network,
            seed=self._seed,
            tick_interval=self._tick_interval,
            max_events=self._max_events,
            faults=tuple(self._faults),
            fault_seed=self._fault_seed,
            fault_start_after=self._fault_start_after,
            message_mutator=self._spec.message_mutator,
            incremental_monitor=self._incremental_monitor,
            workload=self._workload,
            join_call=self._spec.join_call,
            schedule=self._spec.schedule,
            collect=self._spec.collect,
            options=self._options,
            system_name=self._spec.name,
            trace=self._trace,
            metrics=self._metrics,
            backend=self._backend,
            backend_options=dict(self._backend_options),
        )
        return live.run()

    def sweep(self, *,
              seeds: Optional[Sequence[int]] = None,
              faults: Optional[Sequence[Union[str, Sequence[str], None]]] = None,
              modes: Optional[Sequence[str]] = None,
              scenarios: Optional[Sequence[Optional[str]]] = None,
              properties: Optional[
                  Sequence[Union[str, Sequence[str], None]]] = None,
              workloads: Optional[Sequence[Optional[str]]] = None,
              backends: Optional[Sequence[str]] = None,
              jobs: Optional[int] = None,
              out: Optional[Any] = None,
              resume: bool = False,
              progress: Optional[Callable[[dict], None]] = None):
        """Run a campaign sweeping axes over this experiment's base settings.

        Every axis defaults to the single value the builder holds (its
        seed, its fault presets, its mode, live run), so each added axis
        multiplies the matrix::

            report = (Experiment("randtree")
                      .duration(120)
                      .sweep(seeds=range(8),
                             faults=["partition", "chaos"],
                             modes=["off", "steering"],
                             jobs=4))
            print(report.totals["violations_avoided"])

        Cells execute across a ``multiprocessing`` pool (``jobs=None``
        sizes it from ``os.cpu_count()``); ``out`` streams every finished
        run into a JSONL result store and ``resume=True`` skips cells that
        store already holds.  Returns a
        :class:`~repro.campaign.CampaignReport`.

        Cells are rebuilt from plain data inside the workers, so only the
        serializable builder surface carries over: deployment settings,
        churn, simple ``network(...)`` scalars, options, and fault *preset
        names*.  Explicit :class:`NetworkModel` / ``Fault`` instances
        raise, and other uncarried explicit settings (engine, budget, ...)
        warn instead of silently changing the measurement.
        """
        from ..campaign import CampaignSpec, run_campaign

        instances = [fault for fault in self._faults
                     if not isinstance(fault, str)]
        if faults is None:
            if instances:
                raise ValueError(
                    "sweep() cannot carry explicit Fault instances (the "
                    "partition_every shorthand included) into worker "
                    "processes; name fault presets instead, e.g. "
                    "faults=['partition'] or .faults('partition')")
            fault_presets: Sequence[Any] = [tuple(
                fault for fault in self._faults if isinstance(fault, str))
                or None]
        else:
            if instances:
                warnings.warn(
                    "the faults= axis replaces the builder's fault list; "
                    "its explicit Fault instances are dropped from the "
                    "sweep", UserWarning, stacklevel=2)
            fault_presets = list(faults)
        if self._network_params is None:
            raise ValueError(
                "sweep() cannot carry an explicit NetworkModel instance "
                "into worker processes; configure the network from scalars "
                "instead: network(rtt=..., loss=..., jitter=..., "
                "rst_loss=...)")
        property_instances = [
            sel for sel in (self._property_selectors or [])
            if not isinstance(sel, str)]
        if properties is None:
            if property_instances:
                raise ValueError(
                    "sweep() cannot carry Property instances into worker "
                    "processes; select properties by id pattern instead, "
                    "e.g. .properties('randtree.*')")
            if self._property_selectors is not None:
                property_axis: Sequence[Any] = [
                    tuple(sel for sel in self._property_selectors
                          if isinstance(sel, str))]
            else:
                property_axis = [None]
        else:
            if property_instances:
                warnings.warn(
                    "the properties= axis replaces the builder's property "
                    "selection; its Property instances are dropped from "
                    "the sweep", UserWarning, stacklevel=2)
            property_axis = list(properties)
        if workloads is None:
            if self._workload is not None and self._workload_name is None:
                raise ValueError(
                    "sweep() cannot carry an inline WorkloadSpec instance "
                    "into worker processes; register the workload on the "
                    "system and select it by name: .workload('lookups')")
            workload_axis: Sequence[Optional[str]] = [self._workload_name]
        else:
            if self._workload is not None and self._workload_name is None:
                warnings.warn(
                    "the workloads= axis replaces the builder's inline "
                    "WorkloadSpec; it is dropped from the sweep",
                    UserWarning, stacklevel=2)
            workload_axis = list(workloads)
        backend_axis = (list(backends) if backends is not None
                        else [self._backend])
        if self._backend_options:
            warnings.warn(
                "sweep() rebuilds each cell from plain data and drops the "
                "builder's backend options; cells run the backend with its "
                "defaults", UserWarning, stacklevel=2)
        # "metrics" carries implicitly: campaign workers always collect
        # metrics into each cell's report.  A trace file cannot be shared
        # across worker processes, so it is dropped with a warning.
        uncarried = self._explicit & {
            "engine", "portfolio", "max_events", "transition",
            "immediate_check", "check_filter_safety", "checker_nodes",
            "incremental_monitor", "trace", "checking", "delta_checkpoints",
            "batched_control_plane"}
        if self._cb_config is not None or "search_budget" in self._cb_kwargs:
            uncarried = uncarried | {"crystalball config/budget"}
        if uncarried:
            warnings.warn(
                f"sweep() rebuilds each cell from plain data and ignores "
                f"these builder settings: {sorted(uncarried)}",
                UserWarning, stacklevel=2)
        spec = CampaignSpec(
            systems=[self._spec.name],
            scenarios=(list(scenarios) if scenarios is not None
                       else [self._scenario]),
            fault_presets=fault_presets,
            seeds=(list(seeds) if seeds is not None else [self._seed]),
            modes=(list(modes) if modes is not None else [self._mode.value]),
            properties=property_axis,
            properties_exclude=tuple(self._property_exclude),
            workloads=workload_axis,
            workload_overrides=dict(self._workload_overrides),
            backends=backend_axis,
            nodes=self._nodes if "nodes" in self._explicit else None,
            duration=(self._duration if "duration" in self._explicit
                      else None),
            churn=self._churn_interval is not None,
            churn_interval=self._churn_interval,
            network=dict(self._network_params),
            options=dict(self._options),
            fault_seed=self._fault_seed,
            fault_start_after=self._fault_start_after,
        )
        return run_campaign(spec, jobs=jobs, out=out, resume=resume,
                            progress=progress)

    def addresses(self) -> list[Address]:
        return make_addresses(self._nodes, start=1)
