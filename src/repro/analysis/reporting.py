"""Table and figure formatting for the benchmark harness.

Every benchmark regenerates the rows or series of one table/figure of the
paper; these helpers print them in a consistent, plain-text form so the
benchmark output can be compared side-by-side with the paper
(EXPERIMENTS.md records that comparison).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 *, title: str = "") -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


@dataclass
class ExperimentRecord:
    """Paper-vs-measured record for one experiment (EXPERIMENTS.md rows)."""

    experiment: str
    paper_result: str
    measured_result: str
    notes: str = ""

    def as_row(self) -> list[str]:
        return [self.experiment, self.paper_result, self.measured_result, self.notes]


@dataclass
class ExperimentLog:
    """Collects experiment records across a benchmark session."""

    records: list[ExperimentRecord] = field(default_factory=list)

    def add(self, experiment: str, paper_result: str, measured_result: str,
            notes: str = "") -> ExperimentRecord:
        record = ExperimentRecord(experiment=experiment, paper_result=paper_result,
                                  measured_result=measured_result, notes=notes)
        self.records.append(record)
        return record

    def render(self) -> str:
        return format_table(
            ["Experiment", "Paper", "Measured", "Notes"],
            [r.as_row() for r in self.records],
            title="Paper vs measured",
        )
