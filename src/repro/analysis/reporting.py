"""Table and figure formatting for the benchmark harness.

Every benchmark regenerates the rows or series of one table/figure of the
paper; these helpers print them in a consistent, plain-text form so the
benchmark output can be compared side-by-side with the paper
(EXPERIMENTS.md records that comparison).
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence


def to_jsonable(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serializable primitives.

    Sets and frozensets become sorted lists, tuples become lists, enums
    their ``value``, dataclasses dicts, and anything else that is not a
    JSON primitive is rendered with ``str`` (addresses, paths, ...).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return to_jsonable(value.value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: to_jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, Mapping):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    return str(value)


def render_run_report(report: Any) -> str:
    """Plain-text rendering of a :class:`~repro.api.report.RunReport`."""
    data = report.to_dict()
    lines = [
        f"system: {data['system']}"
        + (f"  scenario: {data['scenario']}" if data.get("scenario") else "")
        + (f"  backend: {data['backend']}" if data.get("backend") else ""),
        f"mode: {data['mode']}  seed: {data['seed']}  "
        f"nodes: {data['node_count']}  "
        f"simulated: {data['simulated_seconds']:.1f}s  "
        f"wall-clock: {data['wall_clock_seconds']:.2f}s  "
        f"churn events: {data['churn_events']}",
    ]
    accounting = data.get("accounting", {})
    if accounting:
        lines.append("accounting: " + "  ".join(
            f"{key}={value}" for key, value in accounting.items()))
    faults = data.get("faults", {})
    if faults:
        by_type = faults.get("by_type", {})
        parts = [f"injected={faults.get('faults_injected', 0)}"]
        parts += [f"{name}={counts.get('injected', 0)}"
                  for name, counts in sorted(by_type.items())]
        lines.append("faults: " + "  ".join(parts))
    monitor = data.get("monitor", {})
    if monitor:
        lines.append("monitor: " + "  ".join(
            f"{key}={value}" for key, value in sorted(monitor.items())
            if not isinstance(value, (list, dict))))
    outcome = data.get("outcome", {})
    if outcome:
        lines.append("outcome:")
        for key, value in sorted(outcome.items()):
            lines.append(f"  {key}: {value}")
    nodes = data.get("nodes", [])
    if nodes:
        shown = ("ticks", "model_checker_runs", "snapshots_collected",
                 "incomplete_snapshots", "violations_predicted",
                 "filters_installed", "filters_triggered", "isc_blocks",
                 "replayed_paths", "replay_reproduced")
        headers = ["node", "mode"] + list(shown)
        rows = [[node["node"], node["mode"]]
                + [node["stats"].get(name, 0) for name in shown]
                for node in nodes]
        lines.append(format_table(headers, rows, title="per-node controllers"))
    return "\n".join(lines)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 *, title: str = "") -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str],
                          rows: Sequence[Sequence[Any]]) -> str:
    """Render a GitHub-flavored markdown table (job summaries, PR bodies)."""
    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(cells) + " |"

    lines = [line([str(h) for h in headers]),
             line(["---"] * len(headers))]
    for row in rows:
        lines.append(line([_fmt(cell) for cell in row]))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


@dataclass
class ExperimentRecord:
    """Paper-vs-measured record for one experiment (EXPERIMENTS.md rows)."""

    experiment: str
    paper_result: str
    measured_result: str
    notes: str = ""

    def as_row(self) -> list[str]:
        return [self.experiment, self.paper_result, self.measured_result, self.notes]


@dataclass
class ExperimentLog:
    """Collects experiment records across a benchmark session."""

    records: list[ExperimentRecord] = field(default_factory=list)

    def add(self, experiment: str, paper_result: str, measured_result: str,
            notes: str = "") -> ExperimentRecord:
        record = ExperimentRecord(experiment=experiment, paper_result=paper_result,
                                  measured_result=measured_result, notes=notes)
        self.records.append(record)
        return record

    def render(self) -> str:
        return format_table(
            ["Experiment", "Paper", "Measured", "Notes"],
            [r.as_row() for r in self.records],
            title="Paper vs measured",
        )
