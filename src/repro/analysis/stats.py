"""Statistics helpers used by the benchmark harness."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def median(values: Sequence[float]) -> float:
    """Median; 0.0 for an empty sequence."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def percentile(values: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile (``fraction`` in [0, 1])."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    position = fraction * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return ordered[low]
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def stddev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two samples."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / len(values))


@dataclass(frozen=True)
class CdfPoint:
    """One point of an empirical CDF."""

    value: float
    fraction: float


def empirical_cdf(values: Sequence[float]) -> list[CdfPoint]:
    """Empirical CDF of ``values`` (Figure 17 plots these)."""
    ordered = sorted(values)
    count = len(ordered)
    return [CdfPoint(value=v, fraction=(i + 1) / count)
            for i, v in enumerate(ordered)]


def slowdown(baseline: Sequence[float], treatment: Sequence[float]) -> float:
    """Relative slowdown of ``treatment`` vs ``baseline`` medians.

    Positive values mean the treatment is slower; Figure 17 reports a
    slowdown below 10 % for Bullet' under CrystalBall.
    """
    base = median(baseline)
    if base == 0:
        return 0.0
    return (median(treatment) - base) / base


def growth_ratios(values: Sequence[float]) -> list[float]:
    """Ratios between consecutive values (used to check exponential growth)."""
    ratios = []
    for previous, current in zip(values, values[1:]):
        if previous > 0:
            ratios.append(current / previous)
    return ratios
