"""Statistics and reporting helpers for the benchmark harness."""

from .reporting import ExperimentLog, ExperimentRecord, format_table
from .stats import (
    CdfPoint,
    empirical_cdf,
    growth_ratios,
    mean,
    median,
    percentile,
    slowdown,
    stddev,
)

__all__ = [
    "ExperimentLog",
    "ExperimentRecord",
    "format_table",
    "CdfPoint",
    "empirical_cdf",
    "growth_ratios",
    "mean",
    "median",
    "percentile",
    "slowdown",
    "stddev",
]
