"""``repro.obs`` — the observability surface for the whole stack.

Three pillars, one package:

* :mod:`repro.obs.tracer` — structured JSONL execution traces (schema v1):
  event outcomes, message send→deliver causal edges, checkpoint gathers,
  model-checker runs, steering-filter installs/triggers, property
  violations, fault injections.
* :mod:`repro.obs.metrics` — the per-run metrics registry (counters,
  gauges, histograms) snapshotted into ``RunReport.metrics`` and folded
  deterministically into campaign aggregates.
* :mod:`repro.obs.trace_tools` / :mod:`repro.obs.export` — analysis and
  Chrome trace-event export, backing the ``python -m repro trace``
  subcommand.

This package is a strict *leaf*: it imports nothing from the rest of
``repro``, so every layer (runtime, core, mc, faults, api, campaign) can
depend on it without cycles.  The disabled path is the default — a
:class:`~repro.obs.context.ObsContext` with both members ``None`` — and
costs only attribute checks.
"""

from .context import ObsContext
from .log import configure_logging, get_logger, progress_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import (
    RECORD_KINDS,
    SCHEMA_VERSION,
    JsonlTracer,
    MemoryTracer,
    NullTracer,
    Tracer,
)
from .trace_tools import (
    TraceSummary,
    causal_chain,
    filter_records,
    filter_trace,
    format_records,
    format_trace,
    read_trace,
    strip_wall_fields,
    summarize,
    summarize_records,
    validate_trace,
)
from .export import chrome_trace, write_chrome_trace

__all__ = [
    "ObsContext",
    "configure_logging",
    "get_logger",
    "progress_logger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RECORD_KINDS",
    "SCHEMA_VERSION",
    "Tracer",
    "MemoryTracer",
    "JsonlTracer",
    "NullTracer",
    "TraceSummary",
    "summarize",
    "filter_trace",
    "format_trace",
    "read_trace",
    "summarize_records",
    "filter_records",
    "format_records",
    "validate_trace",
    "strip_wall_fields",
    "causal_chain",
    "chrome_trace",
    "write_chrome_trace",
]
