"""The observability context threaded through the whole stack.

One :class:`ObsContext` bundles the tracer and the metrics registry for a
run.  The simulator owns it (``sim.obs``) and every other layer — monitor,
controller, nemesis, search engines — reaches observability through that
single handle.  Both members default to ``None``, which *is* the disabled
path: instrumentation sites bind ``tr = self.obs.tracer`` once and guard
``if tr is not None``, so a run without observability never builds a
record or touches a metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .metrics import MetricsRegistry
from .tracer import Tracer


@dataclass
class ObsContext:
    """Tracer + metrics for one run; both ``None`` means fully disabled."""

    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None

    @property
    def enabled(self) -> bool:
        return self.tracer is not None or self.metrics is not None

    def close(self) -> None:
        """Flush the tracer sink, if any (idempotent)."""
        if self.tracer is not None:
            self.tracer.close()
