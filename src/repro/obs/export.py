"""Chrome trace-event export for schema-v1 JSONL traces.

:func:`chrome_trace` converts a record list into the Chrome trace-event
JSON format (the ``chrome://tracing`` / Perfetto "JSON array" flavour):

* Each node becomes a named thread (``tid``) in one process (``pid`` 0);
  records render as 1 µs slices on their node's track at their simulated
  time (1 simulated second = 1 s on the viewer timeline).
* ``send`` → ``deliver`` pairs additionally emit flow events bound by the
  stable message id, so the viewer draws the causal arrow between nodes.
* Nodeless records (faults, global violations) land on a ``(global)``
  track.

Wall-clock data (the ``wall`` field of ``mc_run``) is kept out of the
timeline — it appears in the slice ``args`` instead — so the exported
view stays in coherent simulated-time units.
"""

from __future__ import annotations

import json
from typing import Any, Sequence, Union

Record = dict[str, Any]

#: Timeline scale: simulated seconds → trace-event microseconds.
_US_PER_SECOND = 1_000_000

#: tid for records that carry no node (faults, global violations).
_GLOBAL_TID = 0


def _node_tids(records: Sequence[Record]) -> dict[str, int]:
    nodes = sorted(
        {
            str(record["node"])
            for record in records
            if record.get("node") is not None
        }
    )
    return {node: tid for tid, node in enumerate(nodes, start=1)}


def chrome_trace(records: Sequence[Record]) -> dict[str, Any]:
    """Render records as a Chrome trace-event document (a JSON dict)."""
    tids = _node_tids(records)
    events: list[dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": _GLOBAL_TID,
            "args": {"name": "(global)"},
        }
    ]
    for node, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": f"node {node}"},
            }
        )

    meta_args: dict[str, Any] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "meta":
            meta_args = {k: v for k, v in record.items() if k != "kind"}
            continue
        ts = int(record.get("t", 0.0) * _US_PER_SECOND)
        node = record.get("node")
        tid = tids.get(str(node), _GLOBAL_TID) if node is not None else _GLOBAL_TID
        args = {
            key: value
            for key, value in record.items()
            if key not in ("kind", "t", "node")
        }
        name = kind
        if kind == "event":
            name = f"event:{record.get('outcome', '?')}"
        elif kind in ("send", "deliver", "drop"):
            name = f"{kind}:{record.get('mtype', '?')}"
        elif kind == "fault":
            name = f"fault:{record.get('action', '?')}:{record.get('fault', '?')}"
        events.append(
            {
                "name": name,
                "cat": kind,
                "ph": "X",
                "ts": ts,
                "dur": 1,
                "pid": 0,
                "tid": tid,
                "args": args,
            }
        )
        if kind == "send":
            events.append(
                {
                    "name": f"msg:{record.get('mtype', '?')}",
                    "cat": "message",
                    "ph": "s",
                    "id": record.get("msg"),
                    "ts": ts,
                    "pid": 0,
                    "tid": tid,
                }
            )
        elif kind == "deliver":
            events.append(
                {
                    "name": f"msg:{record.get('mtype', '?')}",
                    "cat": "message",
                    "ph": "f",
                    "bp": "e",
                    "id": record.get("msg"),
                    "ts": ts,
                    "pid": 0,
                    "tid": tid,
                }
            )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": meta_args,
    }


def write_chrome_trace(
    records: Sequence[Record], path: Union[str, Any]
) -> int:
    """Write the Chrome trace-event document to ``path``; returns #events."""
    document = chrome_trace(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, separators=(",", ":"))
        handle.write("\n")
    return len(document["traceEvents"])
