"""Structured execution tracing: JSONL span/event records (schema v1).

A :class:`Tracer` receives typed records from every instrumented layer and
forwards them to a sink — a JSONL file (:class:`JsonlTracer`), an in-memory
list (:class:`MemoryTracer`) or nowhere (:class:`NullTracer`).  The live
runtime holds ``tracer = None`` by default and every instrumentation site
guards with ``if tracer is not None``, so a run without tracing pays only
attribute checks (the "disabled path" pinned by
``benchmarks/bench_obs_overhead.py``).

Trace JSONL schema v1
---------------------
One JSON object per line.  The first record is always the run header::

    {"kind": "meta", "v": 1, "system": ..., "scenario": ..., "mode": ...,
     "seed": ..., "nodes": ...}

Every other record has ``kind`` and ``t`` (simulated seconds); everything
else is kind-specific:

``event``
    An event the runtime decided about: ``node``, ``etype`` (``msg`` /
    ``timer`` / ``app`` / ``reset`` / ``connerr``), ``outcome``
    (``executed`` / ``filtered`` / ``filtered+reset`` / ``delayed`` /
    ``blocked-by-isc`` / ``reset``), ``desc``, ``eid`` (per-run execution
    sequence number, only for executed outcomes) and ``msg`` (the message
    id for deliveries — the causal edge back to its ``send``).
``send`` / ``deliver`` / ``drop``
    Message lifecycle keyed by the stable ``msg`` id assigned at send time:
    ``send`` carries ``node`` (source), ``dst``, ``mtype``, ``transport``,
    ``control`` and ``bytes``; ``deliver`` carries ``node`` (destination),
    ``src`` and ``mtype``; ``drop`` adds ``reason`` (``unreachable`` /
    ``loss`` / ``peer-down`` / ``stale-connection``).
``checkpoint``
    ``node``, ``cn`` (checkpoint number), ``forced``.
``snapshot``
    A completed neighbourhood gather: ``node``, ``cn``, ``members``,
    ``missing``, ``complete``.
``mc_run``
    One model-checker run: ``node``, ``engine``, ``states``,
    ``transitions``, ``depth``, ``violations``, ``wall`` (wall-clock
    seconds — the only nondeterministic field family, see below).
``filter_install`` / ``filter_trigger``
    Steering: ``node``, ``filter`` (human description) plus ``property``
    and ``path_len`` on install, ``action`` and ``desc`` on trigger.
``violation``
    ``node``, ``property``, ``severity``, ``vkind`` (``safety`` /
    ``liveness`` / ``predicted``), ``detail`` and (live episodes only)
    ``digest`` — the process-stable sha1 state digest.
``fault``
    Nemesis activity: ``fault``, ``action`` (``inject`` / ``heal`` /
    ``skip``), ``detail``.
``run_end``
    ``events`` executed and final ``t``.

Determinism: with a fixed seed every field of every record reproduces
bit-for-bit across runs and ``PYTHONHASHSEED`` values **except** fields
named ``wall``, which carry wall-clock durations.  Consumers comparing
traces must strip ``wall`` (``repro.obs.trace_tools.strip_wall_fields``).
"""

from __future__ import annotations

import json
from typing import Any, Optional, Union

#: Trace schema version emitted in the ``meta`` header record.
SCHEMA_VERSION = 1

#: Every record kind the schema defines (kept in sync with the docstring
#: above and validated by the schema-stability tests).
RECORD_KINDS = (
    "meta",
    "event",
    "send",
    "deliver",
    "drop",
    "checkpoint",
    "snapshot",
    "mc_run",
    "filter_install",
    "filter_trigger",
    "violation",
    "fault",
    "run_end",
)


class Tracer:
    """Builds schema-v1 records and hands them to :meth:`emit`.

    Subclasses implement :meth:`emit` (and may override the typed helpers
    wholesale, as :class:`NullTracer` does, to skip record construction).
    """

    def emit(self, record: dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release the sink; safe to call more than once."""

    # ------------------------------------------------------------- helpers

    def meta(
        self,
        *,
        system: str,
        scenario: Optional[str],
        mode: str,
        seed: int,
        nodes: int,
        backend: str = "sim",
    ) -> None:
        record = {
            "kind": "meta",
            "v": SCHEMA_VERSION,
            "system": system,
            "scenario": scenario,
            "mode": mode,
            "seed": seed,
            "nodes": nodes,
        }
        # Traces written before execution backends existed have no key;
        # sim runs keep matching them byte for byte.
        if backend != "sim":
            record["backend"] = backend
        self.emit(record)

    def event(
        self,
        t: float,
        node: Any,
        etype: str,
        outcome: str,
        desc: str,
        *,
        eid: Optional[int] = None,
        msg: Optional[int] = None,
    ) -> None:
        record: dict[str, Any] = {
            "kind": "event",
            "t": t,
            "node": str(node),
            "etype": etype,
            "outcome": outcome,
            "desc": desc,
        }
        if eid is not None:
            record["eid"] = eid
        if msg is not None:
            record["msg"] = msg
        self.emit(record)

    def send(
        self,
        t: float,
        node: Any,
        msg: int,
        mtype: str,
        dst: Any,
        transport: str,
        control: bool,
        size: int,
    ) -> None:
        self.emit(
            {
                "kind": "send",
                "t": t,
                "node": str(node),
                "msg": msg,
                "mtype": mtype,
                "dst": str(dst),
                "transport": transport,
                "control": control,
                "bytes": size,
            }
        )

    def deliver(self, t: float, node: Any, msg: int, mtype: str, src: Any) -> None:
        self.emit(
            {
                "kind": "deliver",
                "t": t,
                "node": str(node),
                "msg": msg,
                "mtype": mtype,
                "src": str(src),
            }
        )

    def drop(self, t: float, msg: int, mtype: str, reason: str) -> None:
        self.emit(
            {"kind": "drop", "t": t, "msg": msg, "mtype": mtype, "reason": reason}
        )

    def checkpoint(self, t: float, node: Any, cn: int, *, forced: bool = False) -> None:
        self.emit(
            {
                "kind": "checkpoint",
                "t": t,
                "node": str(node),
                "cn": cn,
                "forced": forced,
            }
        )

    def snapshot(
        self,
        t: float,
        node: Any,
        cn: int,
        members: int,
        missing: int,
    ) -> None:
        self.emit(
            {
                "kind": "snapshot",
                "t": t,
                "node": str(node),
                "cn": cn,
                "members": members,
                "missing": missing,
                "complete": missing == 0,
            }
        )

    def mc_run(
        self,
        t: float,
        node: Any,
        *,
        engine: str,
        states: int,
        transitions: int,
        depth: int,
        violations: int,
        wall: float,
    ) -> None:
        self.emit(
            {
                "kind": "mc_run",
                "t": t,
                "node": str(node),
                "engine": engine,
                "states": states,
                "transitions": transitions,
                "depth": depth,
                "violations": violations,
                "wall": wall,
            }
        )

    def filter_install(
        self,
        t: float,
        node: Any,
        filter_desc: str,
        *,
        property_id: str,
        path_len: int,
    ) -> None:
        self.emit(
            {
                "kind": "filter_install",
                "t": t,
                "node": str(node),
                "filter": filter_desc,
                "property": property_id,
                "path_len": path_len,
            }
        )

    def filter_trigger(
        self, t: float, node: Any, filter_desc: str, action: str, desc: str
    ) -> None:
        self.emit(
            {
                "kind": "filter_trigger",
                "t": t,
                "node": str(node),
                "filter": filter_desc,
                "action": action,
                "desc": desc,
            }
        )

    def violation(
        self,
        t: float,
        node: Any,
        property_id: str,
        severity: str,
        vkind: str,
        detail: str,
        *,
        digest: Optional[str] = None,
    ) -> None:
        record: dict[str, Any] = {
            "kind": "violation",
            "t": t,
            "node": None if node is None else str(node),
            "property": property_id,
            "severity": severity,
            "vkind": vkind,
            "detail": detail,
        }
        if digest is not None:
            record["digest"] = digest
        self.emit(record)

    def fault(self, t: float, fault: str, action: str, detail: dict) -> None:
        self.emit(
            {
                "kind": "fault",
                "t": t,
                "fault": fault,
                "action": action,
                "detail": dict(detail),
            }
        )

    def run_end(self, t: float, events: int) -> None:
        self.emit({"kind": "run_end", "t": t, "events": events})


class MemoryTracer(Tracer):
    """Buffers every record in :attr:`records` (tests and tooling)."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)


class JsonlTracer(Tracer):
    """Streams records to a JSONL file as they are emitted."""

    def __init__(self, path: Union[str, Any]) -> None:
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")
        self.records_written = 0

    def emit(self, record: dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        self.records_written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class NullTracer(Tracer):
    """Accepts everything, records nothing — not even record construction.

    This exists for the overhead benchmark: it measures the cost of the
    instrumentation *dispatch* alone, an upper bound on what the default
    ``tracer is None`` guards can cost.
    """

    def emit(self, record: dict[str, Any]) -> None:
        pass

    def meta(self, **kwargs: Any) -> None:
        pass

    def event(self, *args: Any, **kwargs: Any) -> None:
        pass

    def send(self, *args: Any, **kwargs: Any) -> None:
        pass

    def deliver(self, *args: Any, **kwargs: Any) -> None:
        pass

    def drop(self, *args: Any, **kwargs: Any) -> None:
        pass

    def checkpoint(self, *args: Any, **kwargs: Any) -> None:
        pass

    def snapshot(self, *args: Any, **kwargs: Any) -> None:
        pass

    def mc_run(self, *args: Any, **kwargs: Any) -> None:
        pass

    def filter_install(self, *args: Any, **kwargs: Any) -> None:
        pass

    def filter_trigger(self, *args: Any, **kwargs: Any) -> None:
        pass

    def violation(self, *args: Any, **kwargs: Any) -> None:
        pass

    def fault(self, *args: Any, **kwargs: Any) -> None:
        pass

    def run_end(self, *args: Any, **kwargs: Any) -> None:
        pass
