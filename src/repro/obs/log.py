"""Stdlib logging for the repro package.

Every module gets its logger via ``get_logger(__name__)`` — a plain
``logging.getLogger`` call, centralised here so the whole tree hangs under
the ``repro`` logger and a single :func:`configure_logging` call (wired to
the CLI's ``-v/--verbose`` flag) controls it.

Verbosity mapping: ``0`` → WARNING (default, quiet), ``1`` → INFO,
``2+`` → DEBUG.  Campaign progress output is special-cased: it goes to the
dedicated ``repro.campaign.progress`` logger, which stays at INFO with a
bare message format and does not propagate — so progress lines keep
appearing by default without ``-v``, exactly as the old raw stderr writes
did.
"""

from __future__ import annotations

import logging
import sys

#: Attribute stamped on handlers we install, so repeated configuration
#: (tests, repeated CLI invocations in one process) never duplicates them.
_HANDLER_MARKER = "_repro_obs_handler"

#: Logger carrying campaign progress lines; always INFO, never propagates.
PROGRESS_LOGGER_NAME = "repro.campaign.progress"


def get_logger(name: str) -> logging.Logger:
    """Return the stdlib logger for ``name`` (conventionally ``__name__``)."""
    return logging.getLogger(name)


def _install_handler(
    logger: logging.Logger, formatter: logging.Formatter
) -> None:
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_MARKER, False):
            return
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(formatter)
    setattr(handler, _HANDLER_MARKER, True)
    logger.addHandler(handler)


def configure_logging(verbosity: int = 0) -> None:
    """Configure the ``repro`` logger tree for a CLI/script invocation.

    ``verbosity`` is the count of ``-v`` flags: 0 → WARNING, 1 → INFO,
    2 or more → DEBUG.  Safe to call repeatedly; handlers are installed
    once and only the levels change.
    """
    if verbosity <= 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG

    root = logging.getLogger("repro")
    root.setLevel(level)
    _install_handler(
        root,
        logging.Formatter("%(levelname)s %(name)s: %(message)s"),
    )

    progress = logging.getLogger(PROGRESS_LOGGER_NAME)
    progress.setLevel(logging.INFO)
    progress.propagate = False
    _install_handler(progress, logging.Formatter("%(message)s"))


def progress_logger() -> logging.Logger:
    """The always-on, bare-format logger for campaign progress lines.

    Self-configuring: callers that never ran :func:`configure_logging`
    (scripts driving ``run_campaign`` directly) still get progress lines.
    """
    progress = logging.getLogger(PROGRESS_LOGGER_NAME)
    progress.setLevel(logging.INFO)
    progress.propagate = False
    _install_handler(progress, logging.Formatter("%(message)s"))
    return progress
