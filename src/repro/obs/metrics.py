"""The metrics registry: counters, gauges and histograms for one run.

A :class:`MetricsRegistry` is the quantitative half of ``repro.obs``: every
instrumented layer (runtime, monitor, controller, search engines, faults)
increments named metrics through it, and :meth:`MetricsRegistry.snapshot`
renders the whole catalogue as one JSON-ready dict that
:class:`~repro.api.report.RunReport` carries as ``report.metrics``.

Determinism contract
--------------------
*Counters* and *gauges* only ever record event counts and sizes derived
from the seeded simulation, so their snapshot is bit-identical across
reruns of the same seed — campaign aggregates fold **counters only** for
exactly this reason.  *Histograms* are where wall-clock observations live
(per-phase controller timings, model-checker run seconds); their sums are
real time and therefore excluded from every deterministic rollup.

Metric names are dotted paths namespaced by layer, e.g.
``runtime.events_executed``, ``monitor.node_checks_cached``,
``controller.mc_run_seconds``, ``parallel.barrier_wait_seconds`` (see the
README's metrics catalogue).
"""

from __future__ import annotations

from typing import Any, Optional


class Counter:
    """A monotonically increasing integer metric."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time numeric metric (last value and high-water mark)."""

    __slots__ = ("value", "max_value")

    def __init__(self) -> None:
        self.value: float = 0.0
        self.max_value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value

    def update_max(self, value: float) -> None:
        """Record ``value`` only as a high-water mark (keeps ``value`` too)."""
        self.set(max(self.value, value))


class Histogram:
    """Streaming summary of observed samples (count/sum/min/max/last).

    No buckets: the consumers here want totals and extremes, and a fixed
    five-number summary keeps the snapshot shape schema-stable.
    """

    __slots__ = ("count", "total", "min", "max", "last")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.last = value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metrics for one run, created lazily on first use.

    ``counter``/``gauge``/``histogram`` memoize per name, so hot paths can
    resolve a metric once and keep the handle.  Asking for an existing name
    with a different kind raises — a metric's kind is part of its schema.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} is already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            self._check_unique(name, "counter")
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            self._check_unique(name, "gauge")
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            self._check_unique(name, "histogram")
            metric = self._histograms[name] = Histogram()
        return metric

    def inc(self, name: str, amount: int = 1) -> None:
        """Shorthand for ``counter(name).inc(amount)``."""
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Shorthand for ``histogram(name).observe(value)``."""
        self.histogram(name).observe(value)

    # ------------------------------------------------------------ snapshot

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of every metric, keys sorted for stable output.

        Shape (schema v1)::

            {"counters":   {name: int},
             "gauges":     {name: {"value": x, "max": y}},
             "histograms": {name: {"count", "sum", "min", "max", "mean",
                                   "last"}}}
        """
        return {
            "counters": {
                name: metric.value
                for name, metric in sorted(self._counters.items())
            },
            "gauges": {
                name: {"value": metric.value, "max": metric.max_value}
                for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "count": metric.count,
                    "sum": metric.total,
                    "min": metric.min,
                    "max": metric.max,
                    "mean": metric.mean,
                    "last": metric.last,
                }
                for name, metric in sorted(self._histograms.items())
            },
        }

    def counters(self) -> dict[str, int]:
        """The deterministic subset campaigns roll up, keys sorted.

        ``parallel.*`` counters are excluded: cross-shard handoff volume
        and round counts depend on worker scheduling, not only on the
        seed, so they stay visible in :meth:`snapshot` but out of every
        deterministic aggregate.
        """
        return {
            name: metric.value
            for name, metric in sorted(self._counters.items())
            if not name.startswith("parallel.")
        }
