"""Trace analysis: legacy in-memory traces and schema-v1 JSONL files.

Two record shapes flow through here:

* **Legacy runtime traces** — sequences of ``TraceRecord`` objects from
  ``Simulator.trace`` (attributes ``time`` / ``node`` / ``kind`` /
  ``description``).  :func:`summarize`, :func:`filter_trace` and
  :func:`format_trace` moved here verbatim from ``repro.sim.trace`` (which
  is now a deprecation shim).  They duck-type the records on purpose: this
  module is part of the ``repro.obs`` leaf package and must not import the
  runtime.
* **Structured JSONL traces** — lists of dicts produced by
  :class:`repro.obs.tracer.JsonlTracer` (schema v1).  :func:`read_trace`,
  :func:`summarize_records`, :func:`filter_records`,
  :func:`validate_trace`, :func:`strip_wall_fields` and
  :func:`causal_chain` operate on those.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable, Optional, Sequence, Union

from .tracer import RECORD_KINDS, SCHEMA_VERSION

# --------------------------------------------------------------------------
# Legacy in-memory traces (moved from repro.sim.trace)
# --------------------------------------------------------------------------


@dataclass
class TraceSummary:
    """Aggregated view of a trace."""

    total_events: int
    by_kind: dict[str, int]
    by_node: dict[str, int]
    first_time: float
    last_time: float

    def duration(self) -> float:
        return max(0.0, self.last_time - self.first_time)


def summarize(trace: Sequence[Any]) -> TraceSummary:
    """Aggregate a runtime trace into per-kind and per-node counts."""
    if not trace:
        return TraceSummary(
            total_events=0, by_kind={}, by_node={}, first_time=0.0, last_time=0.0
        )
    by_kind = Counter(record.kind for record in trace)
    by_node = Counter(str(record.node) for record in trace)
    return TraceSummary(
        total_events=len(trace),
        by_kind=dict(by_kind),
        by_node=dict(by_node),
        first_time=trace[0].time,
        last_time=trace[-1].time,
    )


def filter_trace(
    trace: Iterable[Any],
    *,
    node: Any = None,
    kind: Optional[str] = None,
    contains: Optional[str] = None,
) -> list[Any]:
    """Select trace records by node, outcome kind and/or description text."""
    selected = []
    for record in trace:
        if node is not None and record.node != node:
            continue
        if kind is not None and record.kind != kind:
            continue
        if contains is not None and contains not in record.description:
            continue
        selected.append(record)
    return selected


def format_trace(trace: Sequence[Any], *, limit: int = 50) -> str:
    """Render a runtime trace as aligned text lines (used by the examples)."""
    lines = []
    for record in trace[:limit]:
        lines.append(
            f"{record.time:10.3f}s  {str(record.node):>8}  "
            f"{record.kind:<16} {record.description}"
        )
    if len(trace) > limit:
        lines.append(f"... ({len(trace) - limit} more events)")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Structured JSONL traces (schema v1)
# --------------------------------------------------------------------------

Record = dict[str, Any]


def read_trace(path: Union[str, Any]) -> list[Record]:
    """Load a JSONL trace file into a list of record dicts."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{line_number}: expected a JSON object"
                )
            records.append(record)
    return records


def validate_trace(records: Sequence[Record]) -> list[str]:
    """Check a record list against schema v1; returns problem strings."""
    problems = []
    if not records:
        return ["trace is empty"]
    head = records[0]
    if head.get("kind") != "meta":
        problems.append("first record is not a 'meta' header")
    elif head.get("v") != SCHEMA_VERSION:
        problems.append(
            f"unsupported schema version {head.get('v')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    for index, record in enumerate(records):
        kind = record.get("kind")
        if kind not in RECORD_KINDS:
            problems.append(f"record {index}: unknown kind {kind!r}")
            continue
        if kind != "meta" and "t" not in record:
            problems.append(f"record {index} ({kind}): missing 't'")
        if index > 0 and kind == "meta":
            problems.append(f"record {index}: duplicate 'meta' header")
    return problems


def summarize_records(records: Sequence[Record]) -> TraceSummary:
    """Aggregate a JSONL trace into per-kind and per-node counts."""
    body = [r for r in records if r.get("kind") != "meta"]
    if not body:
        return TraceSummary(
            total_events=0, by_kind={}, by_node={}, first_time=0.0, last_time=0.0
        )
    by_kind = Counter(r["kind"] for r in body)
    by_node = Counter(str(r["node"]) for r in body if r.get("node") is not None)
    return TraceSummary(
        total_events=len(body),
        by_kind=dict(by_kind),
        by_node=dict(by_node),
        first_time=body[0].get("t", 0.0),
        last_time=body[-1].get("t", 0.0),
    )


def filter_records(
    records: Iterable[Record],
    *,
    node: Optional[str] = None,
    kind: Optional[str] = None,
    contains: Optional[str] = None,
) -> list[Record]:
    """Select JSONL records by node, record kind and/or substring match."""
    selected = []
    for record in records:
        if record.get("kind") == "meta":
            continue
        if node is not None and str(record.get("node")) != node:
            continue
        if kind is not None and record.get("kind") != kind:
            continue
        if contains is not None:
            haystack = json.dumps(record, separators=(",", ":"))
            if contains not in haystack:
                continue
        selected.append(record)
    return selected


def format_records(records: Sequence[Record], *, limit: int = 50) -> str:
    """Render JSONL records as aligned text lines."""
    lines = []
    for record in records[:limit]:
        kind = record.get("kind", "?")
        if kind == "meta":
            lines.append(f"meta: schema v{record.get('v')} {record}")
            continue
        node = record.get("node")
        detail = {
            key: value
            for key, value in record.items()
            if key not in ("kind", "t", "node")
        }
        lines.append(
            f"{record.get('t', 0.0):10.3f}s  "
            f"{'-' if node is None else str(node):>8}  "
            f"{kind:<16} {json.dumps(detail, separators=(',', ':'))}"
        )
    if len(records) > limit:
        lines.append(f"... ({len(records) - limit} more records)")
    return "\n".join(lines)


def strip_wall_fields(records: Iterable[Record]) -> list[Record]:
    """Copy records with every ``wall`` field removed.

    ``wall`` fields carry wall-clock durations — the only nondeterministic
    data in a trace.  Strip them before comparing traces across runs.
    """
    return [
        {key: value for key, value in record.items() if key != "wall"}
        for record in records
    ]


def causal_chain(records: Sequence[Record], node: str) -> list[Record]:
    """Explain why steering fired on ``node``: the causal record chain.

    Walks backward from the node's last steering activity —
    ``filter_trigger`` if one exists, else the last ``filter_install`` —
    through the install, the model-checker run that predicted the
    violation, the neighbourhood snapshot that fed it, the checkpoint
    gather, the predicted-violation records themselves, and any fault
    injections that preceded the chain.  Returns the chain in
    chronological order; empty if steering never touched the node.
    """
    node = str(node)

    def last(kind: str, *, before: Optional[float] = None, **match: Any):
        found = None
        for record in records:
            if record.get("kind") != kind:
                continue
            if before is not None and record.get("t", 0.0) > before:
                continue
            if any(record.get(k) != v for k, v in match.items()):
                continue
            found = record
        return found

    trigger = last("filter_trigger", node=node)
    anchor_t = trigger.get("t") if trigger else None
    install = last("filter_install", node=node, before=anchor_t)
    if install is None and trigger is None:
        return []

    chain: list[Record] = []
    install_t = install.get("t") if install else anchor_t

    mc = last("mc_run", node=node, before=install_t)
    snap = last("snapshot", node=node, before=mc.get("t") if mc else install_t)
    ckpt = last(
        "checkpoint", node=node, before=snap.get("t") if snap else install_t
    )
    for record in (ckpt, snap, mc):
        if record is not None:
            chain.append(record)

    # Predicted violations surfaced by that model-checker run (same node,
    # same tick — earlier predictions are history, not this decision).
    violation_t = mc.get("t") if mc is not None else install_t
    if violation_t is not None:
        for record in records:
            if (
                record.get("kind") == "violation"
                and record.get("vkind") == "predicted"
                and str(record.get("node")) == node
                and record.get("t", 0.0) == violation_t
            ):
                chain.append(record)

    # Fault activity that preceded the steering decision.
    fault_cutoff = anchor_t if anchor_t is not None else install_t
    for record in records:
        if record.get("kind") != "fault":
            continue
        if fault_cutoff is not None and record.get("t", 0.0) > fault_cutoff:
            continue
        chain.append(record)

    if install is not None:
        chain.append(install)
    if trigger is not None:
        chain.append(trigger)
    chain.sort(key=lambda r: r.get("t", 0.0))
    return chain
