"""The composable fault types the nemesis can schedule.

Topology faults (:class:`Partition`, :class:`LinkFlap`) act on the
:class:`~repro.runtime.network.NetworkModel` partition set; lifecycle faults
(:class:`CrashRestart`) drive the simulator's crash/revive hooks so a
restart comes back with fresh state, exactly like churn; :class:`ClockSkew`
jumps a node's checkpoint-number clock, forcing peers into forced
checkpoints (Section 2.3); message faults (:class:`MessageDelay`,
:class:`MessageReorder`, :class:`MessageDup`) install
:class:`~repro.faults.base.MessageInterceptor` windows on the network model
for their duration.

All target selection draws from the nemesis-provided RNG, so a fault
schedule is reproducible from the nemesis seed alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..runtime.address import Address
from ..runtime.messages import Message
from ..runtime.simulator import Simulator
from .base import Fault, MessageInterceptor

__all__ = [
    "Partition",
    "LinkFlap",
    "CrashRestart",
    "ClockSkew",
    "MessageDelay",
    "MessageReorder",
    "MessageDup",
]


# ---------------------------------------------------------------- topology


@dataclass
class Partition(Fault):
    """Split the alive nodes into two sides and cut every cross link.

    ``fraction`` of the alive nodes (at least ``min_side``, never all) are
    placed on the minority side; ``spare`` keeps the first addresses
    (bootstrap node, Bullet' source) on the majority side.  Each heal
    restores exactly the links its own injection cut (injections and heals
    pair up FIFO), so overlapping partitions compose safely.
    """

    name = "partition"

    fraction: float = 0.5
    min_side: int = 1
    spare: int = 0
    #: FIFO of per-injection link batches; heals pop the oldest batch.
    _cut_batches: list[list[tuple[Address, Address]]] = field(
        default_factory=list, init=False, repr=False
    )

    def inject(self, sim: Simulator, rng: random.Random) -> Optional[dict]:
        nodes = self.alive_addresses(sim)
        eligible = self.alive_addresses(sim, spare=self.spare)
        if len(nodes) < 2 or not eligible:
            return None
        size = min(
            max(self.min_side, round(len(nodes) * self.fraction)),
            len(nodes) - 1,
            len(eligible),
        )
        minority = set(rng.sample(eligible, size))
        majority = [addr for addr in nodes if addr not in minority]
        batch = []
        for a in minority:
            for b in majority:
                sim.network.partition(a, b)
                batch.append((a, b))
        self._cut_batches.append(batch)
        return {"minority": sorted(str(a) for a in minority), "links_cut": len(batch)}

    def heal(self, sim: Simulator) -> Optional[dict]:
        batch = self._cut_batches.pop(0) if self._cut_batches else []
        for a, b in batch:
            sim.network.heal(a, b)
        return {"links_restored": len(batch)}


@dataclass
class LinkFlap(Fault):
    """Repeatedly cut and restore one (stable) link.

    The pair is picked on the first injection and reused while both ends
    stay alive, modelling a single flaky physical link rather than roaming
    partitions.
    """

    name = "link-flap"

    _pair: Optional[tuple[Address, Address]] = field(
        default=None, init=False, repr=False
    )
    #: FIFO of pairs cut by past injections; each heal restores the pair
    #: its own injection cut, even if the flapping link changed since.
    _cut_pairs: list[tuple[Address, Address]] = field(
        default_factory=list, init=False, repr=False
    )

    def inject(self, sim: Simulator, rng: random.Random) -> Optional[dict]:
        if self._pair is not None:
            a, b = self._pair
            if not (sim.nodes[a].alive and sim.nodes[b].alive):
                self._pair = None
        if self._pair is None:
            nodes = self.alive_addresses(sim)
            if len(nodes) < 2:
                return None
            self._pair = tuple(rng.sample(nodes, 2))
        a, b = self._pair
        sim.network.partition(a, b)
        self._cut_pairs.append((a, b))
        return {"link": f"{a}<->{b}"}

    def heal(self, sim: Simulator) -> Optional[dict]:
        if not self._cut_pairs:
            return None
        a, b = self._cut_pairs.pop(0)
        sim.network.heal(a, b)
        return {"link": f"{a}<->{b}"}


# ---------------------------------------------------------------- lifecycle


@dataclass
class CrashRestart(Fault):
    """Fail-stop crash; the restart (after ``duration``) resets node state.

    With ``duration=None`` the crash is permanent.  ``spare`` protects the
    first addresses (bootstrap node, Bullet' source) from being targeted;
    ``target`` pins the victim instead of drawing one from the RNG.
    """

    name = "crash-restart"

    target: Optional[Address] = None
    spare: int = 1
    _down: Optional[Address] = field(default=None, init=False, repr=False)

    def inject(self, sim: Simulator, rng: random.Random) -> Optional[dict]:
        if self._down is not None:
            return None  # still down from the previous injection
        if self.target is not None:
            node = sim.nodes.get(self.target)
            if node is None or not node.alive:
                return None
            victim = self.target
        else:
            candidates = self.alive_addresses(sim, spare=self.spare)
            if not candidates:
                return None
            victim = rng.choice(candidates)
        sim.crash_node(victim)
        self._down = victim
        return {"node": str(victim), "restart": self.duration is not None}

    def heal(self, sim: Simulator) -> Optional[dict]:
        if self._down is None:
            return None
        victim, self._down = self._down, None
        sim.revive_node(victim)
        return {"node": str(victim), "state": "reset"}

    def cleanup(self, sim: Simulator) -> None:
        # A node still down at the end of the run stays down — crash state
        # lives in the (discarded) simulator, not in any shared object, and
        # a post-run revival would distort the collected outcome.
        self._down = None


@dataclass
class ClockSkew(Fault):
    """Jump one node's checkpoint-number clock forward by ``amount``.

    Every peer that later receives a message from the skewed node observes a
    larger checkpoint number and takes a forced checkpoint first — the
    Section 2.3 mechanism under clock divergence.
    """

    name = "clock-skew"

    amount: int = 5
    spare: int = 0

    def inject(self, sim: Simulator, rng: random.Random) -> Optional[dict]:
        candidates = self.alive_addresses(sim, spare=self.spare)
        if not candidates:
            return None
        victim = rng.choice(candidates)
        node = sim.nodes[victim]
        for _ in range(self.amount):
            node.clock.advance()
        return {"node": str(victim), "advanced": self.amount, "clock": node.clock.value}


# ------------------------------------------------------------- message faults


class _DelayInterceptor(MessageInterceptor):
    def __init__(self, min_extra: float, max_extra: float) -> None:
        self.min_extra = min_extra
        self.max_extra = max_extra
        self.affected = 0

    def transform(
        self, message: Message, plan: list[float], rng: random.Random
    ) -> list[float]:
        if not plan:
            return plan
        self.affected += 1
        return [
            latency + rng.uniform(self.min_extra, self.max_extra) for latency in plan
        ]


class _ReorderInterceptor(MessageInterceptor):
    def __init__(self, probability: float, window: float) -> None:
        self.probability = probability
        self.window = window
        self.affected = 0

    def transform(
        self, message: Message, plan: list[float], rng: random.Random
    ) -> list[float]:
        if not plan or rng.random() >= self.probability:
            return plan
        self.affected += 1
        return [latency + rng.uniform(0.0, self.window) for latency in plan]


class _DupInterceptor(MessageInterceptor):
    def __init__(self, probability: float) -> None:
        self.probability = probability
        self.affected = 0

    def transform(
        self, message: Message, plan: list[float], rng: random.Random
    ) -> list[float]:
        # Control-plane messages are idempotent by construction; duplicating
        # them only inflates bandwidth accounting, so target service traffic.
        if not plan or message.control or rng.random() >= self.probability:
            return plan
        self.affected += 1
        return plan + [plan[-1] + rng.uniform(1e-3, 0.05)]


@dataclass
class _InterceptorFault(Fault):
    """Shared lifecycle for faults that install a message interceptor."""

    _interceptor: Optional[MessageInterceptor] = field(
        default=None, init=False, repr=False
    )

    def make_interceptor(self) -> MessageInterceptor:
        raise NotImplementedError

    def describe(self) -> dict:
        return {}

    def inject(self, sim: Simulator, rng: random.Random) -> Optional[dict]:
        if self._interceptor is not None:
            return None  # previous window still open
        self._interceptor = self.make_interceptor()
        sim.network.interceptors.append(self._interceptor)
        return self.describe()

    def heal(self, sim: Simulator) -> Optional[dict]:
        if self._interceptor is None:
            return None
        interceptor, self._interceptor = self._interceptor, None
        if interceptor in sim.network.interceptors:
            sim.network.interceptors.remove(interceptor)
        return {"messages_affected": interceptor.affected}


@dataclass
class MessageDelay(_InterceptorFault):
    """Add ``[min_extra, max_extra]`` seconds of latency to every message
    transmitted while the window is open (TCP ordering is preserved)."""

    name = "message-delay"

    min_extra: float = 0.1
    max_extra: float = 0.5

    def make_interceptor(self) -> MessageInterceptor:
        return _DelayInterceptor(self.min_extra, self.max_extra)

    def describe(self) -> dict:
        return {"min_extra": self.min_extra, "max_extra": self.max_extra}


@dataclass
class MessageReorder(_InterceptorFault):
    """Randomly defer a fraction of messages by up to ``window`` seconds so
    later sends can overtake them.  The simulator keeps TCP streams FIFO, so
    reordering is observable on UDP traffic and across distinct peers."""

    name = "message-reorder"

    probability: float = 0.5
    window: float = 1.0

    def make_interceptor(self) -> MessageInterceptor:
        return _ReorderInterceptor(self.probability, self.window)

    def describe(self) -> dict:
        return {"probability": self.probability, "window": self.window}


@dataclass
class MessageDup(_InterceptorFault):
    """Deliver a fraction of service messages twice — the retransmit-glitch
    adversary that flushes out non-idempotent handlers."""

    name = "message-dup"

    probability: float = 0.25

    def make_interceptor(self) -> MessageInterceptor:
        return _DupInterceptor(self.probability)

    def describe(self) -> dict:
        return {"probability": self.probability}
