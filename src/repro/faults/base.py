"""Fault-injection primitives: the :class:`Fault` contract.

CrystalBall's evaluation exercises the systems under adverse conditions —
network partitions, message delay and reordering, crash-recovery resets
(Sections 5.4.1/5.4.2 run churn and the Figure 13 fault schedule).  A
:class:`Fault` is one such adversity, described declaratively: *when* it
fires (one-shot ``at`` or periodic ``every``), *how long* it lasts
(``duration``, after which :meth:`Fault.heal` undoes it), and *what* it does
(:meth:`Fault.inject`).  The :class:`~repro.faults.nemesis.Nemesis`
scheduler owns the timing and bookkeeping so that a fault schedule is fully
determined by the nemesis seed.

Message-level faults (delay, reorder, duplication) act through
:class:`MessageInterceptor` objects installed on
:class:`~repro.runtime.network.NetworkModel`: the simulator asks the network
model for a *delivery plan* (a list of delivery latencies, empty = dropped)
for every transmitted message, and each installed interceptor may transform
that plan.  Byzantine faults (see :mod:`repro.faults.byzantine`)
additionally use the :meth:`MessageInterceptor.rewrite` hook to alter the
message *content* on the wire before the plan is computed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional

from ..runtime.address import Address
from ..runtime.messages import Message
from ..runtime.simulator import Simulator


@dataclass
class FaultRecord:
    """One fault event that actually happened during a run."""

    time: float
    fault: str
    kind: str  # "inject" | "heal" | "skip"
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": round(self.time, 3),
            "fault": self.fault,
            "kind": self.kind,
            "detail": dict(self.detail),
        }


@dataclass
class Fault:
    """Base class for injectable faults.

    Parameters
    ----------
    at:
        Absolute (nemesis-relative) time of a one-shot injection.
    every:
        Period of a recurring injection; mutually exclusive with ``at``.
    duration:
        How long the fault stays active before :meth:`heal` is called.
        ``None`` means the fault is instantaneous (e.g. a reset) or
        permanent (nothing to undo).
    rng_key:
        Optional explicit seed string for this fault's private RNG.  The
        nemesis normally derives the per-fault RNG from
        ``(seed, index, name)``; a concretized attack step (see
        :mod:`repro.attack`) pins its own key instead, so dropping one
        step during trace minimization never shifts the draws of the
        remaining steps.
    """

    at: Optional[float] = None
    every: Optional[float] = None
    duration: Optional[float] = None
    rng_key: Optional[str] = None

    #: Human-readable fault-type name used in records and breakdowns.
    name = "fault"

    def __post_init__(self) -> None:
        if (self.at is None) == (self.every is None):
            raise ValueError(
                f"{type(self).__name__} needs exactly one of at= (one-shot) "
                f"or every= (periodic)"
            )
        if self.every is not None and self.every <= 0:
            raise ValueError("every must be positive")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive")

    # -- target selection helpers ---------------------------------------------

    @staticmethod
    def alive_addresses(sim: Simulator, *, spare: int = 0) -> list[Address]:
        """Alive node addresses, optionally sparing the first ``spare``
        (bootstrap / source) nodes from being targeted."""
        alive = sorted(addr for addr, node in sim.nodes.items() if node.alive)
        protected = set(sorted(sim.nodes)[:spare])
        return [addr for addr in alive if addr not in protected]

    # -- lifecycle ------------------------------------------------------------

    def inject(self, sim: Simulator, rng: random.Random) -> Optional[dict]:
        """Apply the fault; return a detail dict for the record, or ``None``
        when no eligible target exists (recorded as a skip)."""
        raise NotImplementedError

    def heal(self, sim: Simulator) -> Optional[dict]:
        """Undo the fault (called ``duration`` after a successful inject)."""
        return None

    def cleanup(self, sim: Simulator) -> None:
        """Undo any still-active effect when the run ends.

        Heals scheduled past the simulation horizon never execute, so a
        window still open at the end would otherwise leave residue
        (interceptors, cut links) on a possibly caller-supplied
        :class:`~repro.runtime.network.NetworkModel`.  The default drains
        :meth:`heal` until it reports nothing left to undo.
        """
        for _ in range(1024):  # every heal undoes one injection; bounded
            if self.heal(sim) is None:
                return


class MessageInterceptor:
    """Transforms the delivery plan — and optionally the content — of
    transmitted messages.

    ``transform`` receives the message, the current plan (a list of delivery
    latencies in seconds; one entry per copy that will be delivered, empty
    meaning the message is dropped) and the simulator RNG, and returns the
    new plan.  Interceptors compose: the network model threads the plan
    through every installed interceptor in order.

    ``rewrite`` may return a *replacement* message that is delivered instead
    of the original — the hook byzantine faults tamper, spoof and
    equivocate through.  The default is the identity and consumes no RNG
    state, so benign fault schedules stay bit-identical to the pre-byzantine
    runtime.
    """

    #: Messages intercepted (for fault detail accounting).
    affected: int = 0

    def transform(
        self, message: Message, plan: list[float], rng: random.Random
    ) -> list[float]:
        raise NotImplementedError

    def rewrite(self, message: Message, rng: random.Random) -> Message:
        """Return the message to deliver in place of ``message``.

        Called once per transmitted message (after the loss draw, before
        the delivery plan); byzantine interceptors override it.  Must not
        consume ``rng`` unless it actually alters behaviour, so that
        fault-free and benign-fault runs keep their historical schedules.
        """
        return message
