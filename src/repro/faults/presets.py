"""Named fault presets: reusable nemesis recipes.

A preset is a factory ``(duration) -> list[Fault]`` whose periods scale
with the experiment duration, so both a 30-second CI smoke run and a
ten-minute nightly soak inject a comparable *number* of faults.  Presets
are what ``python -m repro run <system> --faults <preset>`` and
``Experiment(...).faults("partition")`` name; :func:`make_nemesis` expands
any mix of preset names and explicit :class:`~repro.faults.base.Fault`
instances into one seeded :class:`~repro.faults.nemesis.Nemesis`.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterable, Union

from .base import Fault
from .byzantine import EquivocatingNode, MessageTamper, SpoofSender
from .nemesis import Nemesis
from .types import (
    ClockSkew,
    CrashRestart,
    LinkFlap,
    MessageDelay,
    MessageDup,
    MessageReorder,
    Partition,
)

PresetFactory = Callable[[float], list[Fault]]

PRESETS: dict[str, PresetFactory] = {}


def register_preset(name: str, factory: PresetFactory) -> PresetFactory:
    """Add a named preset (external code can extend the table)."""
    PRESETS[name] = factory
    return factory


def list_presets() -> list[str]:
    return sorted(PRESETS)


def _preset(name: str):
    def decorate(factory: PresetFactory) -> PresetFactory:
        return register_preset(name, factory)

    return decorate


@_preset("partition")
def _partition(duration: float) -> list[Fault]:
    """Recurring half/half split that heals before the next one."""
    return [Partition(every=duration / 4, duration=duration / 8)]


@_preset("partition-churn")
def _partition_churn(duration: float) -> list[Fault]:
    """Partitions overlapping with crash/restart churn — the compound
    adversary behind the Chord ring-consistency scenarios."""
    return [
        Partition(every=duration / 3, duration=duration / 10),
        CrashRestart(every=duration / 4, duration=duration / 12),
    ]


@_preset("delay")
def _delay(duration: float) -> list[Fault]:
    """Windows of heavy added latency (asynchrony spikes)."""
    return [
        MessageDelay(
            every=duration / 4, duration=duration / 8, min_extra=0.2, max_extra=1.0
        )
    ]


@_preset("reorder")
def _reorder(duration: float) -> list[Fault]:
    return [MessageReorder(every=duration / 4, duration=duration / 8)]


@_preset("duplicate")
def _duplicate(duration: float) -> list[Fault]:
    return [MessageDup(every=duration / 4, duration=duration / 8)]


@_preset("crash")
def _crash(duration: float) -> list[Fault]:
    """Crash-recovery resets: a random non-bootstrap node fail-stops and
    comes back with fresh state."""
    return [CrashRestart(every=duration / 4, duration=duration / 10)]


@_preset("clock-skew")
def _clock_skew(duration: float) -> list[Fault]:
    return [ClockSkew(every=duration / 4)]


@_preset("link-flap")
def _link_flap(duration: float) -> list[Fault]:
    """One flaky link cut and restored many times over the run."""
    return [LinkFlap(every=duration / 10, duration=duration / 20)]


@_preset("chaos")
def _chaos(duration: float) -> list[Fault]:
    """Everything at once, staggered so the adversaries overlap."""
    return [
        Partition(every=duration / 3, duration=duration / 9),
        CrashRestart(every=duration / 4, duration=duration / 12),
        MessageDelay(every=duration / 5, duration=duration / 10),
        MessageDup(every=duration / 6, duration=duration / 12),
        ClockSkew(every=duration / 4),
    ]


@_preset("byzantine")
def _byzantine(duration: float) -> list[Fault]:
    """Lying adversary: tampered payloads plus forged sender addresses,
    staggered so the windows overlap part of the time."""
    return [
        MessageTamper(every=duration / 4, duration=duration / 8),
        SpoofSender(every=duration / 3, duration=duration / 8),
    ]


@_preset("equivocation")
def _equivocation(duration: float) -> list[Fault]:
    """One node tells conflicting stories to different peers — the
    byzantine behaviour behind the Paxos agreement attack."""
    return [EquivocatingNode(every=duration / 3, duration=duration / 4)]


def resolve_preset(name: str, duration: float) -> list[Fault]:
    """Expand one preset name; raises with the known names on a typo."""
    try:
        factory = PRESETS[name]
    except KeyError:
        known = ", ".join(list_presets())
        raise ValueError(
            f"unknown fault preset {name!r} (known presets: {known})"
        ) from None
    return factory(duration)


def make_nemesis(
    faults: Iterable[Union[str, Fault]],
    *,
    duration: float,
    seed: int = 0,
    start_after: float = 0.0,
    stop_after_fraction: float = 0.9,
) -> Nemesis:
    """Build a seeded nemesis from preset names and/or fault instances.

    Injections stop at ``stop_after_fraction * duration`` (like the churn
    process) so the run's tail shows whether the system re-converges.
    """
    expanded: list[Fault] = []
    for item in faults:
        if isinstance(item, Fault):
            # Deep-copy explicit instances: faults carry runtime state
            # (active cuts, crashed target, open interceptor window), so a
            # caller-held instance must not leak one run's state into the
            # next — rerunning the same Experiment must reproduce the same
            # schedule.
            expanded.append(copy.deepcopy(item))
        else:
            expanded.extend(resolve_preset(item, duration))
    return Nemesis(
        faults=expanded,
        seed=seed,
        start_after=start_after,
        stop_after=duration * stop_after_fraction,
    )
