"""Byzantine fault types: an adversary that lies instead of failing.

The benign nemesis faults (partitions, crashes, delays) only model a
*fail-stop* world; CrystalBall's steering claim is more interesting against
an adversary that forges traffic.  Three composable
:class:`~repro.faults.base.Fault` types supply that adversary, all acting
through the :meth:`~repro.faults.base.MessageInterceptor.rewrite` hook on
the network model so the tampering happens "on the wire" — senders keep
their honest state, receivers observe forged bytes:

:class:`MessageTamper`
    Mutates payload fields of a random fraction of in-flight service
    messages through a per-system *mutator* hook (protocol-aware poison
    when the system registers one, a generic integer perturbation
    otherwise).

:class:`SpoofSender`
    Rewrites the source address of a fraction of service messages to
    another live node, forging provenance.

:class:`EquivocatingNode`
    Picks one liar node and rewrites everything it sends so that different
    destinations observe *conflicting* payloads for the same logical step —
    the classic equivocation attack behind the Paxos agreement violation in
    ``examples/paxos_equivocation.py``.

Every draw comes from a private ``random.Random`` seeded from the
nemesis-provided fault RNG at injection time, so attack schedules are
bit-reproducible from the nemesis seed (or the fault's pinned ``rng_key``)
and never perturb the simulator's own RNG stream: a run whose byzantine
windows happen to rewrite nothing is bit-identical to one without them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from ..runtime.address import Address
from ..runtime.messages import Message
from ..runtime.simulator import Simulator
from .base import Fault, MessageInterceptor

__all__ = [
    "MessageMutator",
    "MessageTamper",
    "SpoofSender",
    "EquivocatingNode",
    "MutatingFault",
    "generic_mutator",
]

#: ``mutator(message, rng, variant) -> mutated message or None``.  The
#: variant index selects one of several conflicting rewrites so an
#: equivocating node can feed each destination a different lie; returning
#: ``None`` declines to mutate (the message passes through untouched).
MessageMutator = Callable[[Message, random.Random, int], Optional[Message]]


def generic_mutator(
    message: Message, rng: random.Random, variant: int
) -> Optional[Message]:
    """Protocol-agnostic payload poison: perturb integer payload fields.

    Only plain ``int`` values (not bools, which usually gate control flow)
    are touched, so the mutated message stays structurally valid for every
    bundled protocol — handlers observe a wrong *value*, not a wrong
    *shape*.  Returns ``None`` when the payload holds nothing mutable.
    """
    mutable = [
        key
        for key, value in message.payload.items()
        if isinstance(value, int) and not isinstance(value, bool)
    ]
    if not mutable:
        return None
    key = mutable[rng.randrange(len(mutable))]
    poisoned = dict(message.payload)
    poisoned[key] = int(poisoned[key]) + 1 + variant
    return replace(message, payload=poisoned)


class _ByzantineInterceptor(MessageInterceptor):
    """Shared shape: identity plan transform + content rewrite."""

    def __init__(self, rng: random.Random) -> None:
        #: Private RNG — rewrite draws never touch the simulator RNG, so
        #: the benign event schedule is unchanged by a byzantine window.
        self._rng = rng
        self.affected = 0

    def transform(
        self, message: Message, plan: list[float], rng: random.Random
    ) -> list[float]:
        return plan


class _TamperInterceptor(_ByzantineInterceptor):
    def __init__(
        self,
        rng: random.Random,
        probability: float,
        mutator: MessageMutator,
        mtypes: Optional[tuple[str, ...]],
        variants: int,
    ) -> None:
        super().__init__(rng)
        self.probability = probability
        self.mutator = mutator
        self.mtypes = mtypes
        self.variants = max(1, variants)

    def rewrite(self, message: Message, rng: random.Random) -> Message:
        if message.control:
            return message
        if self.mtypes is not None and message.mtype not in self.mtypes:
            return message
        if self._rng.random() >= self.probability:
            return message
        variant = self._rng.randrange(self.variants)
        mutated = self.mutator(message, self._rng, variant)
        if mutated is None:
            return message
        self.affected += 1
        return mutated


class _SpoofInterceptor(_ByzantineInterceptor):
    def __init__(
        self,
        rng: random.Random,
        probability: float,
        addresses: Sequence[Address],
        mtypes: Optional[tuple[str, ...]],
    ) -> None:
        super().__init__(rng)
        self.probability = probability
        self.addresses = list(addresses)
        self.mtypes = mtypes

    def rewrite(self, message: Message, rng: random.Random) -> Message:
        if message.control:
            return message
        if self.mtypes is not None and message.mtype not in self.mtypes:
            return message
        candidates = [addr for addr in self.addresses if addr != message.src]
        if not candidates or self._rng.random() >= self.probability:
            return message
        forged = candidates[self._rng.randrange(len(candidates))]
        self.affected += 1
        return replace(message, src=forged)


class _EquivocationInterceptor(_ByzantineInterceptor):
    def __init__(
        self,
        rng: random.Random,
        liar: Address,
        addresses: Sequence[Address],
        mutator: MessageMutator,
        mtypes: Optional[tuple[str, ...]],
    ) -> None:
        super().__init__(rng)
        self.liar = liar
        #: Destination order fixes which lie each peer hears: the variant
        #: index is the peer's rank, so the same destination always gets
        #: the same (conflicting-with-everyone-else's) payload.
        self.addresses = sorted(addresses)
        self.mutator = mutator
        self.mtypes = mtypes

    def rewrite(self, message: Message, rng: random.Random) -> Message:
        if message.control or message.src != self.liar:
            return message
        if self.mtypes is not None and message.mtype not in self.mtypes:
            return message
        try:
            variant = self.addresses.index(message.dst)
        except ValueError:
            variant = 0
        mutated = self.mutator(message, self._rng, variant)
        if mutated is None:
            return message
        self.affected += 1
        return mutated


@dataclass
class MutatingFault(Fault):
    """Base for byzantine window faults; carries the payload-mutator hook.

    ``mutator`` defaults to ``None``, which means "use the system's
    registered mutator, falling back to :func:`generic_mutator`" — the
    live-run driver fills in the registered hook (see
    ``SystemSpec.message_mutator``) before the nemesis is installed.
    :class:`SpoofSender` inherits the window lifecycle but forges
    addresses instead of payloads and ignores the mutator.

    The lifecycle mirrors ``_InterceptorFault`` in
    :mod:`repro.faults.types`, except that :meth:`make_interceptor`
    receives the simulator and the fault RNG: byzantine interceptors need
    the membership (to pick liars and forged sources) and a private RNG
    seeded from the schedule RNG at injection time.
    """

    mutator: Optional[MessageMutator] = None
    #: Restrict tampering to these message types (None = all service
    #: traffic).  Control-plane messages are never touched.
    mtypes: Optional[tuple[str, ...]] = None
    _interceptor: Optional[MessageInterceptor] = field(
        default=None, init=False, repr=False
    )

    def resolved_mutator(self) -> MessageMutator:
        return self.mutator if self.mutator is not None else generic_mutator

    def make_interceptor(
        self, sim: Simulator, rng: random.Random
    ) -> Optional[MessageInterceptor]:
        raise NotImplementedError

    def describe(self) -> dict:
        return {}

    def inject(self, sim: Simulator, rng: random.Random) -> Optional[dict]:
        if self._interceptor is not None:
            return None  # previous window still open
        interceptor = self.make_interceptor(sim, rng)
        if interceptor is None:
            return None
        self._interceptor = interceptor
        sim.network.interceptors.append(interceptor)
        return self.describe()

    def heal(self, sim: Simulator) -> Optional[dict]:
        if self._interceptor is None:
            return None
        interceptor, self._interceptor = self._interceptor, None
        if interceptor in sim.network.interceptors:
            sim.network.interceptors.remove(interceptor)
        return {"messages_affected": interceptor.affected}


@dataclass
class MessageTamper(MutatingFault):
    """Mutate payload fields of a fraction of in-flight service messages.

    Each tampered message is rewritten by the mutator with a random variant
    index, so repeated tampering of the same message type yields different
    poison values.  ``probability`` is per transmitted message while the
    window is open.
    """

    name = "message-tamper"

    probability: float = 0.3
    variants: int = 4

    def make_interceptor(
        self, sim: Simulator, rng: random.Random
    ) -> Optional[MessageInterceptor]:
        return _TamperInterceptor(
            random.Random(rng.getrandbits(64)),
            self.probability,
            self.resolved_mutator(),
            self.mtypes,
            self.variants,
        )

    def describe(self) -> dict:
        return {
            "probability": self.probability,
            "mtypes": list(self.mtypes) if self.mtypes else "all",
        }


@dataclass
class SpoofSender(MutatingFault):
    """Forge the source address of a fraction of service messages.

    Receivers observe traffic attributed to a node that never sent it —
    the provenance attack that flushes out protocols trusting the ``src``
    field for membership or voting decisions.  The mutator hook is unused;
    spoofing rewrites addresses, not payloads.
    """

    name = "spoof-sender"

    probability: float = 0.3

    def make_interceptor(
        self, sim: Simulator, rng: random.Random
    ) -> Optional[MessageInterceptor]:
        addresses = self.alive_addresses(sim)
        if len(addresses) < 2:
            return None
        self._pool = len(addresses)
        return _SpoofInterceptor(
            random.Random(rng.getrandbits(64)),
            self.probability,
            addresses,
            self.mtypes,
        )

    def describe(self) -> dict:
        return {"probability": self.probability, "pool": getattr(self, "_pool", 0)}


@dataclass
class EquivocatingNode(MutatingFault):
    """One node's outbound traffic lies differently to every destination.

    The liar is drawn from the alive nodes (``target`` pins it by index
    into the sorted address list; ``spare`` protects the first addresses).
    For each rewritten message the mutator's variant index is the
    destination's rank, so two peers comparing notes on the "same"
    message observe conflicting payloads — equivocation, the byzantine
    behaviour quorum protocols must survive.
    """

    name = "equivocating-node"

    target: Optional[int] = None
    spare: int = 0

    def make_interceptor(
        self, sim: Simulator, rng: random.Random
    ) -> Optional[MessageInterceptor]:
        addresses = self.alive_addresses(sim, spare=self.spare)
        if not addresses:
            return None
        if self.target is not None:
            liar = sorted(sim.nodes)[self.target % len(sim.nodes)]
        else:
            liar = addresses[rng.randrange(len(addresses))]
        self._liar = liar
        return _EquivocationInterceptor(
            random.Random(rng.getrandbits(64)),
            liar,
            sorted(sim.nodes),
            self.resolved_mutator(),
            self.mtypes,
        )

    def describe(self) -> dict:
        return {"liar": str(getattr(self, "_liar", None))}
