"""The :class:`Nemesis`: a deterministic, seeded fault scheduler.

The nemesis owns *when* faults fire.  Installed on a
:class:`~repro.runtime.simulator.Simulator`, it walks each fault's timeline
(one-shot ``at`` or periodic ``every``), calls
:meth:`~repro.faults.base.Fault.inject`, schedules the matching
:meth:`~repro.faults.base.Fault.heal` after ``duration``, and records every
event as a :class:`~repro.faults.base.FaultRecord`.  Each fault draws its
targets from its own ``random.Random`` seeded from ``(seed, index, name)``
— or from the fault's explicit ``rng_key`` when set — so two runs with the
same nemesis seed produce the identical fault schedule — the property the
determinism tests and the model checker's predicted-vs-avoided comparisons
rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from ..runtime.simulator import Simulator
from .base import Fault, FaultRecord

#: Cap on serialized schedule entries in :meth:`Nemesis.report` so a long
#: run's JSON report stays bounded.
_MAX_REPORTED_EVENTS = 200


@dataclass
class Nemesis:
    """Schedules a set of faults into a simulator and accounts for them."""

    faults: Sequence[Fault]
    seed: int = 0
    #: Quiet period before the first injection (lets the system bootstrap).
    start_after: float = 0.0
    #: No injections at or after this simulated time (heals still run).
    stop_after: Optional[float] = None

    records: list[FaultRecord] = field(default_factory=list, init=False)
    installed: bool = field(default=False, init=False)

    def install(self, sim: Simulator) -> "Nemesis":
        """Schedule every fault's first firing; returns self for chaining."""
        if self.installed:
            raise RuntimeError("nemesis is already installed")
        self.installed = True
        for index, fault in enumerate(self.faults):
            rng = random.Random(
                fault.rng_key
                if fault.rng_key is not None
                else f"{self.seed}/{index}/{fault.name}"
            )
            first = fault.at if fault.at is not None else fault.every
            sim.schedule_callback(
                sim.now + self.start_after + first,
                lambda s, f=fault, r=rng: self._fire(s, f, r),
            )
        return self

    # -- scheduling -----------------------------------------------------------

    def _fire(self, sim: Simulator, fault: Fault, rng: random.Random) -> None:
        if self.stop_after is not None and sim.now >= self.stop_after:
            return
        detail = fault.inject(sim, rng)
        if detail is None:
            self.records.append(FaultRecord(sim.now, fault.name, "skip"))
            self._observe(sim, fault.name, "skip", {})
        else:
            self.records.append(FaultRecord(sim.now, fault.name, "inject", detail))
            self._observe(sim, fault.name, "inject", detail)
            if fault.duration is not None:
                sim.schedule_callback(
                    sim.now + fault.duration, lambda s, f=fault: self._heal(s, f)
                )
        if fault.every is not None:
            sim.schedule_callback(
                sim.now + fault.every,
                lambda s, f=fault, r=rng: self._fire(s, f, r),
            )

    def _heal(self, sim: Simulator, fault: Fault) -> None:
        detail = fault.heal(sim)
        if detail is not None:
            self.records.append(FaultRecord(sim.now, fault.name, "heal", detail))
            self._observe(sim, fault.name, "heal", detail)

    def _observe(self, sim: Simulator, name: str, action: str, detail: dict) -> None:
        if sim.obs.metrics is not None:
            sim.obs.metrics.inc(f"faults.{action}")
        if sim.obs.tracer is not None:
            sim.obs.tracer.fault(sim.now, name, action, detail)

    def teardown(self, sim: Simulator) -> None:
        """Undo windows still open when the run ends.

        Heals scheduled past the horizon never execute; this strips their
        residue (interceptors, cut links) so a caller-supplied
        :class:`~repro.runtime.network.NetworkModel` comes back clean and
        can be reused by the next experiment.
        """
        for fault in self.faults:
            fault.cleanup(sim)

    # -- accounting -----------------------------------------------------------

    @property
    def faults_injected(self) -> int:
        return sum(1 for record in self.records if record.kind == "inject")

    def counts_by_type(self) -> dict[str, dict[str, int]]:
        """Per-fault-type ``{injected, healed, skipped}`` breakdown."""
        breakdown: dict[str, dict[str, int]] = {}
        keys = {"inject": "injected", "heal": "healed", "skip": "skipped"}
        for record in self.records:
            entry = breakdown.setdefault(
                record.fault, {"injected": 0, "healed": 0, "skipped": 0}
            )
            entry[keys[record.kind]] += 1
        return breakdown

    def report(self) -> dict[str, Any]:
        """JSON-ready summary for :class:`~repro.api.report.RunReport`."""
        events = [record.to_dict() for record in self.records]
        truncated = max(0, len(events) - _MAX_REPORTED_EVENTS)
        if truncated:
            events = events[:_MAX_REPORTED_EVENTS]
        return {
            "seed": self.seed,
            "faults_injected": self.faults_injected,
            "by_type": self.counts_by_type(),
            "schedule": events,
            "schedule_truncated": truncated,
        }
