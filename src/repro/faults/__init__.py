"""Deterministic fault injection: the nemesis layer.

CrystalBall predicts inconsistencies *before* faults push the deployed
system into them — so the harness needs faults to push with.  This package
supplies them: composable :class:`~repro.faults.base.Fault` types
(partitions, link flaps, crash/restart, clock skew, message
delay/reorder/duplication), the seeded
:class:`~repro.faults.nemesis.Nemesis` scheduler that drives them into a
live :class:`~repro.runtime.simulator.Simulator`, and named presets usable
from the fluent builder (``Experiment(...).faults("partition")``) and the
CLI (``python -m repro run chord --faults partition``).

Faults act through the runtime the protocols actually execute on:
partitions and link flaps cut links in the shared
:class:`~repro.runtime.network.NetworkModel`, crash/restart reuses the
simulator's reset path (fresh state, new incarnation, RST storms), and
message faults transform delivery plans inside the network model itself.
Consequence prediction then runs from the snapshots of the fault-shaped
live states — the checker's own transition relation stays the
over-approximating one (it explores deliveries, losses and resets
regardless of which fault window is currently open).
"""

from .base import Fault, FaultRecord, MessageInterceptor
from .byzantine import (
    EquivocatingNode,
    MessageMutator,
    MessageTamper,
    MutatingFault,
    SpoofSender,
    generic_mutator,
)
from .nemesis import Nemesis
from .presets import (
    PRESETS,
    list_presets,
    make_nemesis,
    register_preset,
    resolve_preset,
)
from .types import (
    ClockSkew,
    CrashRestart,
    LinkFlap,
    MessageDelay,
    MessageDup,
    MessageReorder,
    Partition,
)

__all__ = [
    "Fault",
    "FaultRecord",
    "MessageInterceptor",
    "MessageMutator",
    "MessageTamper",
    "MutatingFault",
    "SpoofSender",
    "EquivocatingNode",
    "generic_mutator",
    "Nemesis",
    "PRESETS",
    "list_presets",
    "make_nemesis",
    "register_preset",
    "resolve_preset",
    "ClockSkew",
    "CrashRestart",
    "LinkFlap",
    "MessageDelay",
    "MessageDup",
    "MessageReorder",
    "Partition",
]
