#!/usr/bin/env python
"""Bench regression gate: fail CI when parallel-engine speedup regresses.

Compares a freshly measured ``BENCH_parallel_speedup.json`` record (written
by ``benchmarks/bench_parallel_speedup.py``, typically in quick mode)
against the committed baseline at the repository root.  The gate is on the
*relative* speedup of the widest parallel configuration vs the serial
engine: a drop of more than ``--threshold`` (default 30%) fails.

Usage::

    python scripts/check_speedup_regression.py NEW.json [--baseline BASE.json]
        [--threshold 0.30]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def widest_parallel_speedup(record: dict) -> tuple[int, float]:
    """(workers, speedup_vs_serial) of the widest parallel engine."""
    parallel = [e for e in record["engines"] if e["workers"] > 1]
    if not parallel:
        raise SystemExit("record has no parallel engine entries")
    widest = max(parallel, key=lambda e: e["workers"])
    return widest["workers"], float(widest["speedup_vs_serial"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("new", type=Path,
                        help="freshly measured BENCH_parallel_speedup.json")
    parser.add_argument("--baseline", type=Path,
                        default=REPO_ROOT / "BENCH_parallel_speedup.json",
                        help="committed baseline record")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="maximum tolerated relative regression")
    args = parser.parse_args(argv)

    new = json.loads(args.new.read_text())
    baseline = json.loads(args.baseline.read_text())

    new_workers, new_speedup = widest_parallel_speedup(new)
    base_workers, base_speedup = widest_parallel_speedup(baseline)
    floor = base_speedup * (1.0 - args.threshold)

    new_cpus = int(new.get("cpu_count") or 1)
    base_cpus = int(baseline.get("cpu_count") or 1)

    print(f"baseline: parallel:{base_workers} speedup {base_speedup:.3f} "
          f"(cpu_count {baseline.get('cpu_count')}, "
          f"depth {baseline.get('max_depth')})")
    print(f"measured: parallel:{new_workers} speedup {new_speedup:.3f} "
          f"(cpu_count {new_cpus}, depth {new.get('max_depth')}, "
          f"quick={new.get('quick', False)})")
    print(f"floor at -{args.threshold:.0%}: {floor:.3f}")

    # Cross-environment comparisons are weak evidence: a baseline recorded
    # on fewer cores (where the parallel engine is legitimately slower
    # than serial) yields a floor a multi-core regression can sail over.
    # Surface that loudly — and advise, without failing on an unvalidated
    # absolute bar, when a parallel-capable host is below serial parity.
    # Re-recording the baseline on a host like the CI runner (run the
    # bench without CB_SPEEDUP_RESULT and commit the JSON) tightens this
    # gate to a like-for-like comparison automatically.
    if new_cpus != base_cpus:
        print(f"note: baseline cpu_count {base_cpus} != measured cpu_count "
              f"{new_cpus}; the relative floor is weak evidence until the "
              f"baseline is re-recorded on this class of host")
    if new_cpus >= 4 and new_speedup < 1.0:
        print(f"warning: host has {new_cpus} CPUs but parallel ran at "
              f"{new_speedup:.3f}x serial — investigate even though the "
              f"baseline-relative gate passes")

    if new_speedup < floor:
        print(f"FAIL: speedup {new_speedup:.3f} regressed more than "
              f"{args.threshold:.0%} below the baseline {base_speedup:.3f}",
              file=sys.stderr)
        return 1
    print("OK: no speedup regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
