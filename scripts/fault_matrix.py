#!/usr/bin/env python
"""DEPRECATED: thin wrapper over ``python -m repro campaign``.

This script used to brute-force the nightly fault matrix by spawning one
cold ``python -m repro run`` subprocess per system × preset combination.
The campaign subsystem (``repro.campaign``) now runs the same matrix
in-process across a worker pool, streaming results to a resumable JSONL
store — use it directly::

    PYTHONPATH=src python -m repro campaign \\
        --axes systems=all --axes presets=all --axes seeds=1 \\
        --axes modes=off --require-faults --jobs 4

This wrapper only translates the old flags (``--system``, ``--seed``) into
a campaign invocation so existing automation keeps working; it will be
removed once nothing calls it.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api.cli import main as repro_main  # noqa: E402

#: Per-system run length (simulated seconds) of the historical matrix:
#: long enough for several injections of every preset, short enough for a
#: nightly run.
DURATIONS = {
    "randtree": 160.0,
    "chord": 160.0,
    "paxos": 60.0,
    "bulletprime": 200.0,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--system",
        default=None,
        help="run only this system's row of the matrix",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: os.cpu_count())",
    )
    args = parser.parse_args(argv)

    warnings.warn(
        "scripts/fault_matrix.py is deprecated; use "
        "`python -m repro campaign` (see repro.campaign)",
        DeprecationWarning,
        stacklevel=2,
    )

    campaign_args = [
        "campaign",
        "--axes",
        f"systems={args.system or 'all'}",
        "--axes",
        "presets=all",
        "--axes",
        f"seeds={args.seed}",
        "--axes",
        "modes=off",
        "--require-faults",
    ]
    for system, duration in sorted(DURATIONS.items()):
        campaign_args += ["--duration", f"{system}={duration:g}"]
    if args.jobs is not None:
        campaign_args += ["--jobs", str(args.jobs)]
    return repro_main(campaign_args)


if __name__ == "__main__":
    sys.exit(main())
