#!/usr/bin/env python
"""Nightly fault-scenario matrix: every system × every fault preset.

For each combination this script shells out to the public CLI::

    python -m repro run <system> --faults <preset> --mode off --json ...

and asserts that the JSON report parses and that the nemesis actually
injected faults (``faults_injected > 0``).  One failing combination fails
the whole matrix, after all combinations have been attempted (so the
nightly log shows the full picture, not just the first casualty).

Usage::

    python scripts/fault_matrix.py                 # full matrix
    python scripts/fault_matrix.py --system chord  # one system's row
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

#: Per-system run length (simulated seconds): long enough for several
#: injections of every preset, short enough for a nightly matrix.
DURATIONS = {
    "randtree": 160.0,
    "chord": 160.0,
    "paxos": 60.0,
    "bulletprime": 200.0,
}


def _cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _cli_json(args: list[str], timeout: float = 600.0) -> dict:
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=_cli_env(), timeout=timeout)
    if proc.returncode != 0:
        raise RuntimeError(
            f"`python -m repro {' '.join(args)}` exited "
            f"{proc.returncode}:\n{proc.stderr.strip()}")
    return json.loads(proc.stdout)


def registered_systems() -> list[str]:
    return [entry["name"] for entry in _cli_json(["list", "--json"])]


def fault_presets() -> list[str]:
    return sorted(_cli_json(["faults", "--json"]))


def run_combination(system: str, preset: str, seed: int) -> dict:
    duration = DURATIONS.get(system, 120.0)
    report = _cli_json([
        "run", system,
        "--faults", preset,
        "--mode", "off",
        "--no-churn",
        "--duration", str(duration),
        "--seed", str(seed),
        "--json",
    ])
    injected = report.get("faults", {}).get("faults_injected", 0)
    if injected <= 0:
        raise RuntimeError(
            f"{system} × {preset}: report parsed but faults_injected == "
            f"{injected}")
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--system", default=None,
                        help="run only this system's row of the matrix")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    systems = registered_systems()
    if args.system is not None:
        if args.system not in systems:
            parser.error(f"unknown system {args.system!r} "
                         f"(registered: {', '.join(systems)})")
        systems = [args.system]
    presets = fault_presets()

    failures: list[str] = []
    for system in systems:
        for preset in presets:
            started = time.perf_counter()
            try:
                report = run_combination(system, preset, args.seed)
            except Exception as exc:  # noqa: BLE001 - report and continue
                failures.append(f"{system} × {preset}: {exc}")
                print(f"FAIL  {system:<12} {preset:<16} {exc}")
                continue
            elapsed = time.perf_counter() - started
            faults = report["faults"]
            print(f"ok    {system:<12} {preset:<16} "
                  f"injected={faults['faults_injected']:<3} "
                  f"types={','.join(sorted(faults['by_type']))} "
                  f"({elapsed:.1f}s)")

    print(f"\n{len(systems) * len(presets) - len(failures)}/"
          f"{len(systems) * len(presets)} combinations passed")
    if failures:
        print("\nfailures:", file=sys.stderr)
        for line in failures:
            print(f"  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
