#!/usr/bin/env python
"""Bench gate: fail CI when the disabled observability path stops being free.

Judges a freshly measured ``BENCH_obs_overhead.json`` record (written by
``benchmarks/bench_obs_overhead.py``, typically in quick mode) against an
absolute ceiling: the no-op-tracer run — a conservative upper bound on the
disabled path — may cost at most ``--max-pct`` (default 3%) over the
disabled run.  The committed baseline at the repository root is printed
for context; the gate itself is absolute because the invariant is
("disabled observability is free"), not ("no slower than last time").

Usage::

    python scripts/check_obs_overhead.py NEW.json [--baseline BASE.json]
        [--max-pct 3.0]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("new", type=Path,
                        help="freshly measured BENCH_obs_overhead.json")
    parser.add_argument("--baseline", type=Path,
                        default=REPO_ROOT / "BENCH_obs_overhead.json",
                        help="committed baseline record (context only)")
    parser.add_argument("--max-pct", type=float, default=3.0,
                        help="maximum tolerated disabled-path overhead")
    args = parser.parse_args(argv)

    new = json.loads(args.new.read_text())
    overhead = float(new["disabled_overhead_pct"])

    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
        print(f"baseline: {baseline['scenario']} disabled overhead "
              f"{baseline['disabled_overhead_pct']:.2f}% "
              f"(traced {baseline['traced_overhead_pct']:.2f}%)")
    print(f"measured: {new['scenario']} disabled overhead "
          f"{overhead:.2f}% (traced {new['traced_overhead_pct']:.2f}%, "
          f"quick={new.get('quick', False)}, "
          f"events {new.get('events_executed')})")
    print(f"ceiling: {args.max_pct:.2f}%")

    if overhead >= args.max_pct:
        print(f"FAIL: disabled-path overhead {overhead:.2f}% is at or over "
              f"the {args.max_pct:.2f}% ceiling", file=sys.stderr)
        return 1
    print("OK: disabled observability stays under the ceiling")
    return 0


if __name__ == "__main__":
    sys.exit(main())
