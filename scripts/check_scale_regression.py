#!/usr/bin/env python
"""Bench gate: fail CI when the scaled runtime loses its headroom.

Judges a freshly measured ``BENCH_scale.json`` record (written by
``benchmarks/bench_scale.py``, typically in quick mode) against absolute
floors: the scaled configuration — sampled checking, delta checkpoints,
batched control plane — must keep at least ``--min-speedup`` (default 2x)
over the per-node-tick-equivalent baseline at 256 nodes, and 10x at 1000
nodes when the record carries the full matrix.  Per-node control-plane
bytes in the scaled cells must also stay under ``--max-control-bytes``.
The committed baseline at the repository root is printed for context; the
gate itself is absolute because the invariant is ("the scale machinery
pays for itself"), not ("no slower than last time").

Usage::

    python scripts/check_scale_regression.py NEW.json
        [--baseline BASE.json] [--min-speedup 2.0]
        [--max-control-bytes 8000]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("new", type=Path,
                        help="freshly measured BENCH_scale.json")
    parser.add_argument("--baseline", type=Path,
                        default=REPO_ROOT / "BENCH_scale.json",
                        help="committed baseline record (context only)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="minimum scaled/baseline events-per-sec ratio "
                             "at 256 nodes")
    parser.add_argument("--min-speedup-1000", type=float, default=10.0,
                        help="minimum ratio at 1000 nodes (full records)")
    parser.add_argument("--max-control-bytes", type=float, default=8000,
                        help="maximum per-node control-plane bytes in the "
                             "scaled cells")
    args = parser.parse_args(argv)

    new = json.loads(args.new.read_text())

    if args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
        context = f"speedup_256 {baseline['speedup_256']:.2f}x"
        if "speedup_1000" in baseline:
            context += f", speedup_1000 {baseline['speedup_1000']:.2f}x"
        print(f"baseline: {baseline['scenario']} {context}")

    speedup = float(new["speedup_256"])
    print(f"measured: {new['scenario']} speedup_256 {speedup:.2f}x "
          f"(quick={new.get('quick', False)})")

    failures = []
    if speedup < args.min_speedup:
        failures.append(
            f"256-node speedup {speedup:.2f}x is under the "
            f"{args.min_speedup:.2f}x floor")
    if "speedup_1000" in new:
        speedup_1000 = float(new["speedup_1000"])
        print(f"measured: speedup_1000 {speedup_1000:.2f}x")
        if speedup_1000 < args.min_speedup_1000:
            failures.append(
                f"1000-node speedup {speedup_1000:.2f}x is under the "
                f"{args.min_speedup_1000:.2f}x floor")
    for label, config in new["configs"].items():
        if config.get("checking_period", 1) <= 1:
            continue
        per_node = float(config["control_bytes_per_node"])
        print(f"measured: {label} control bytes/node {per_node:.0f}")
        if per_node > args.max_control_bytes:
            failures.append(
                f"{label} control bytes/node {per_node:.0f} exceeds "
                f"{args.max_control_bytes:.0f}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: the scaled runtime keeps its headroom")
    return 0


if __name__ == "__main__":
    sys.exit(main())
