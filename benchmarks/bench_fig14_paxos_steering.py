"""Figures 13/14: avoiding injected Paxos safety bugs at runtime.

The paper repeats the Figure 13 scenario 100 times per injected bug and
reports that execution steering avoids the inconsistency in 87% (bug1) and
85% (bug2) of runs, the immediate safety check in another 11%, with 2%/5%
uncaught.  We run a smaller number of repetitions per bug (varying the
inter-round delay, as the paper does) and report the same three outcome
classes, plus a baseline confirming the bug manifests with CrystalBall off.
"""

from __future__ import annotations

import pytest

from repro.api import Experiment
from repro.core import Mode

RUNS_PER_BUG = 2
DELAYS = [10.0, 20.0]
PAPER = {1: {"steering": 0.87, "isc": 0.11, "violations": 0.02},
         2: {"steering": 0.85, "isc": 0.11, "violations": 0.05}}


def _run_scenario(bug: int, mode: Mode, *, delay: float, seed: int):
    return (Experiment("paxos")
            .scenario(f"figure13-bug{bug}")
            .mode(mode)
            .seed(seed)
            .options(inter_round_delay=delay)
            .run())


def _run_bug(bug: int):
    outcomes = {"steering": 0, "isc": 0, "violations": 0}
    for index in range(RUNS_PER_BUG):
        report = _run_scenario(bug, Mode.STEERING,
                               delay=DELAYS[index % len(DELAYS)],
                               seed=100 + index)
        outcome = report.outcome
        if outcome["violation_occurred"]:
            outcomes["violations"] += 1
        elif outcome["avoided_by_steering"]:
            outcomes["steering"] += 1
        elif outcome["avoided_by_isc"]:
            outcomes["isc"] += 1
        else:
            outcomes["steering"] += 1  # avoided before any filter had to fire
    return outcomes


@pytest.mark.benchmark(group="fig14")
@pytest.mark.parametrize("bug", [1, 2])
def test_fig14_paxos_execution_steering(benchmark, bug):
    baseline = _run_scenario(bug, Mode.OFF, delay=14.0, seed=7)
    assert baseline.outcome["violation_occurred"], \
        "the injected bug must manifest without CrystalBall"

    outcomes = benchmark.pedantic(lambda: _run_bug(bug), rounds=1, iterations=1)
    total = sum(outcomes.values())
    print(f"\nFigure 14 — Paxos bug{bug}: {outcomes} over {total} runs "
          f"(paper fractions: {PAPER[bug]})")
    benchmark.extra_info.update({"bug": bug, "outcomes": outcomes,
                                 "paper_fractions": PAPER[bug]})
    avoided = outcomes["steering"] + outcomes["isc"]
    assert avoided >= total * 0.5
