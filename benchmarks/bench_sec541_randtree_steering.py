"""Section 5.4.1: RandTree execution steering under churn.

The paper runs 25 RandTree nodes for 1.4 hours with one churn event per
minute and reports: 121 inconsistent states with CrystalBall off, 325
immediate-safety-check engagements in ISC-only mode, and with steering
active 480 predicted violations, 415 behaviour changes, 160 ISC fallbacks
and no uncaught violation.  We run a scaled-down version of the same three
configurations and report the same counters.
"""

from __future__ import annotations

import pytest

from repro.api import Experiment
from repro.core import Mode
from repro.mc import SearchBudget

NODES = 6
DURATION = 300.0


def _run_mode(mode: Mode, seed: int = 31):
    # The second-smallest node bootstraps the tree so root handovers occur.
    return (Experiment("randtree")
            .nodes(NODES)
            .duration(DURATION)
            .churn(interval=60.0)
            .network(rst_loss=0.6)
            .crystalball(mode,
                         budget=SearchBudget(max_states=400, max_depth=6))
            .options(bootstrap_index=1, max_children=2,
                     fix_recovery_timer=True)
            .max_events(150_000)
            .seed(seed)
            .run())


@pytest.mark.benchmark(group="sec541")
def test_sec541_randtree_steering_counters(benchmark):
    def run_all():
        return {mode.value: _run_mode(mode)
                for mode in (Mode.OFF, Mode.ISC_ONLY, Mode.STEERING)}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for label, report in results.items():
        rows.append((label,
                     report.live_inconsistent_states(),
                     report.total_predicted(),
                     report.total_steered(),
                     report.total_unhelpful(),
                     report.total_isc_blocks()))
    print("\nSection 5.4.1 — RandTree churn (scaled down: "
          f"{NODES} nodes, {DURATION:.0f} s)")
    print(f"{'mode':<10} {'inconsistent':>13} {'predicted':>10} {'steered':>8} "
          f"{'unhelpful':>10} {'ISC':>5}")
    for row in rows:
        print(f"{row[0]:<10} {row[1]:>13} {row[2]:>10} {row[3]:>8} {row[4]:>10} {row[5]:>5}")
    print("paper (25 nodes, 1.4 h): off=121 inconsistent states; ISC-only=325 "
          "engagements; steering: 480 predicted / 415 steered / 160 ISC, 0 uncaught")
    benchmark.extra_info["rows"] = rows
    off = results["off"]
    steering = results["steering"]
    # CrystalBall observes/predicts inconsistencies and acts on them.
    assert steering.total_predicted() + steering.total_isc_blocks() > 0
    # Steering does not make the live system *more* inconsistent than the
    # baseline run.
    assert (steering.live_inconsistent_states()
            <= max(off.live_inconsistent_states(), 1) * 2)
