"""Ablation: the interleaving-reduction test of consequence prediction.

Removing the ``localExplored`` test of Figure 8 line 17 turns consequence
prediction back into the exhaustive search of Figure 5 (Section 3.2 makes
this point explicitly).  This ablation runs both algorithms from the same
live snapshot with the same state budget and compares depth reached, states
needed to find the first CrystalBall bug, and interleavings skipped; a
second sweep varies the snapshot (neighbourhood) size.
"""

from __future__ import annotations

import pytest

from repro.core import consequence_prediction
from repro.mc import GlobalState, SearchBudget, find_errors
from repro.runtime import make_addresses
from repro.systems import randtree

from .conftest import make_system

BUDGET = SearchBudget(max_states=4000, max_depth=9)


def _compare_on_figure2():
    scenario = randtree.Figure2Scenario.build()
    system = make_system(scenario.protocol)
    snapshot = scenario.global_state()
    cp = consequence_prediction(system, snapshot, randtree.ALL_PROPERTIES, BUDGET)
    bfs = find_errors(system, snapshot, randtree.ALL_PROPERTIES, BUDGET)
    return cp, bfs


@pytest.mark.benchmark(group="ablation")
def test_ablation_interleaving_reduction(benchmark):
    cp, bfs = benchmark.pedantic(_compare_on_figure2, rounds=1, iterations=1)
    print("\nAblation — consequence prediction vs exhaustive search "
          "(Figure 2 snapshot, equal budget)")
    print(f"  consequence prediction: depth {cp.stats.max_depth_reached}, "
          f"{cp.stats.states_visited} states, "
          f"{len(cp.unique_property_names())} distinct bugs, "
          f"{cp.stats.internal_actions_skipped} interleavings skipped")
    print(f"  exhaustive search:      depth {bfs.stats.max_depth_reached}, "
          f"{bfs.stats.states_visited} states, "
          f"{len(bfs.unique_property_names())} distinct bugs")
    benchmark.extra_info.update({
        "cp_depth": cp.stats.max_depth_reached,
        "bfs_depth": bfs.stats.max_depth_reached,
        "cp_bugs": sorted(cp.unique_property_names()),
        "bfs_bugs": sorted(bfs.unique_property_names()),
    })
    assert cp.stats.max_depth_reached >= bfs.stats.max_depth_reached
    assert "randtree.children_siblings_disjoint" in cp.unique_property_names()
    assert cp.stats.internal_actions_skipped > 0


def _snapshot_size_sweep():
    rows = []
    for node_count in (2, 3, 5):
        addrs = make_addresses(node_count, start=1)
        protocol = randtree.RandTree(randtree.RandTreeConfig(bootstrap=(addrs[0],),
                                                             max_children=2))
        states = {}
        root = protocol.initial_state(addrs[0])
        root.joined = True
        root.root = addrs[0]
        root.children = set(addrs[1:3])
        root.refresh_peers()
        states[addrs[0]] = root
        for child in addrs[1:]:
            state = protocol.initial_state(child)
            state.joined = True
            state.root = addrs[0]
            state.parent = addrs[0]
            state.refresh_peers()
            states[child] = state
        snapshot = GlobalState.from_snapshot(
            states, timers={a: [randtree.RECOVERY_TIMER] for a in addrs})
        result = consequence_prediction(make_system(protocol), snapshot,
                                        randtree.ALL_PROPERTIES, BUDGET)
        rows.append((node_count, result.stats.states_visited,
                     result.stats.max_depth_reached,
                     len(result.unique_property_names())))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_snapshot_size(benchmark):
    rows = benchmark.pedantic(_snapshot_size_sweep, rounds=1, iterations=1)
    print("\nAblation — neighbourhood (snapshot) size vs search effort")
    print(f"{'nodes':>5} {'states':>8} {'depth':>6} {'bugs':>5}")
    for nodes, states, depth, bugs in rows:
        print(f"{nodes:>5} {states:>8} {depth:>6} {bugs:>5}")
    benchmark.extra_info["rows"] = rows
    # Larger neighbourhoods cost more states for the same budget/depth.
    assert rows[-1][1] >= rows[0][1]
