"""Parallel engine speedup: sharded-frontier search vs the serial baseline.

Runs the same RandTree join search (the Figure 12 workload, with silent
resets enabled so the space exceeds 20k states at depth 7) through the
serial engine and through the sharded-frontier parallel engine with 2 and 4
workers, checks result equivalence, and records the wall-clock speedups in
``BENCH_parallel_speedup.json`` at the repository root so the performance
trajectory of the engine is tracked from its first PR.

On machines with at least 4 cores the 4-worker run must beat serial by more
than 1.3x; on smaller machines (e.g. single-core CI runners) the numbers
are recorded but the speedup is not asserted — parallel search cannot beat
serial without cores to run on.

Environment knobs: ``CB_SPEEDUP_DEPTH`` (default 7) bounds the search depth;
depth 7 visits ~48k states and takes a few minutes end to end.
``CB_SPEEDUP_QUICK=1`` switches to the CI smoke configuration: depth 5
(~4k states, seconds instead of minutes), no workload-size or absolute
speedup assertions — the bench-smoke job gates on the *relative* regression
vs the committed baseline via ``scripts/check_speedup_regression.py``
instead.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.mc import (
    GlobalState,
    ParallelEngine,
    SearchBudget,
    SearchKind,
    SerialEngine,
    TransitionConfig,
    TransitionSystem,
)
from repro.runtime import make_addresses
from repro.systems import randtree

QUICK = os.environ.get("CB_SPEEDUP_QUICK", "") not in ("", "0")
DEPTH = int(os.environ.get("CB_SPEEDUP_DEPTH", "5" if QUICK else "7"))
WORKER_COUNTS = (2, 4)
#: Where to write the result record; CI points this elsewhere so the
#: committed baseline stays available for the regression comparison.
RESULT_PATH = Path(os.environ.get(
    "CB_SPEEDUP_RESULT",
    Path(__file__).resolve().parent.parent / "BENCH_parallel_speedup.json"))


def _workload():
    addrs = make_addresses(5)
    protocol = randtree.RandTree(randtree.RandTreeConfig(bootstrap=(addrs[0],)))
    states = {a: protocol.initial_state(a) for a in addrs}
    timers = {a: [randtree.JOIN_TIMER] for a in addrs}
    start = GlobalState.from_snapshot(states, timers=timers)
    system = TransitionSystem(
        protocol, TransitionConfig(enable_resets=True, max_resets_per_node=1))
    return system, start


def _violation_keys(result):
    return sorted({(v.violation.property_name, str(v.violation.node))
                   for v in result.violations})


def _sweep():
    system, start = _workload()
    budget = SearchBudget(max_states=None, max_depth=DEPTH)
    rows = []
    serial = SerialEngine().run(system, start, randtree.ALL_PROPERTIES, budget,
                                kind=SearchKind.EXHAUSTIVE)
    rows.append(("serial", 1, serial))
    for workers in WORKER_COUNTS:
        engine = ParallelEngine(num_workers=workers)
        result = engine.run(system, start, randtree.ALL_PROPERTIES, budget,
                            kind=SearchKind.EXHAUSTIVE)
        rows.append((f"parallel:{workers}", workers, result))
    return rows


@pytest.mark.benchmark(group="parallel_speedup")
def test_parallel_speedup(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    serial = rows[0][2]
    cpu_count = os.cpu_count() or 1

    print(f"\nParallel speedup — RandTree join search, depth {DEPTH}, "
          f"{serial.stats.states_visited} states, {cpu_count} CPU(s)")
    print(f"{'engine':>12} {'workers':>7} {'states':>8} {'seconds':>9} {'speedup':>8}")
    record = {
        "scenario": "randtree-join-5nodes-resets",
        "max_depth": DEPTH,
        "cpu_count": cpu_count,
        "quick": QUICK,
        "engines": [],
    }
    for name, workers, result in rows:
        speedup = serial.stats.elapsed_seconds / max(result.stats.elapsed_seconds,
                                                     1e-9)
        print(f"{name:>12} {workers:>7} {result.stats.states_visited:>8} "
              f"{result.stats.elapsed_seconds:>9.2f} {speedup:>7.2f}x")
        record["engines"].append({
            "engine": name,
            "workers": workers,
            "states_visited": result.stats.states_visited,
            "elapsed_seconds": round(result.stats.elapsed_seconds, 3),
            "speedup_vs_serial": round(speedup, 3),
        })
        # Every engine must explore the same space and find the same bugs.
        assert result.stats.states_visited == serial.stats.states_visited
        assert _violation_keys(result) == _violation_keys(serial)

    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info.update(record)

    if QUICK:
        return  # CI smoke: the regression-gate script judges the numbers
    assert serial.stats.states_visited >= 20_000, \
        "workload too small to be a meaningful speedup benchmark"
    if cpu_count >= 4:
        four_worker = next(e for e in record["engines"] if e["workers"] == 4)
        assert four_worker["speedup_vs_serial"] > 1.3
