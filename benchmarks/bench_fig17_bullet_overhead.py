"""Figure 17: CrystalBall's impact on Bullet' download times.

The paper has 49 nodes download a 20 MB file and shows that running
CrystalBall alongside Bullet' slows the download by less than 10%, with
checkpoints consuming about 30 kbps per node.  We run a scaled-down download
with and without a CrystalBall controller and compare the completion-time
CDFs and the checkpoint bandwidth share.
"""

from __future__ import annotations

import pytest

from repro.analysis import empirical_cdf, median, slowdown
from repro.api import Experiment

NODES = 12
BLOCKS = 32


def _run_download(mode: str):
    return (Experiment("bulletprime")
            .scenario("download")
            .mode(mode)
            .seed(13)
            .options(node_count=NODES, block_count=BLOCKS, max_time=400.0)
            .run())


def _run_pair():
    return _run_download("off"), _run_download("debug")


def _times(report):
    return sorted(report.outcome["completion_times"].values())


@pytest.mark.benchmark(group="fig17")
def test_fig17_bullet_download_overhead(benchmark):
    baseline, monitored = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    base_times = _times(baseline)
    cb_times = _times(monitored)
    rel = slowdown(base_times, cb_times)
    checkpoint_bytes = monitored.outcome["checkpoint_bytes"]
    ckpt_share = (checkpoint_bytes
                  / max(1, checkpoint_bytes + monitored.outcome["service_bytes"]))
    print(f"\nFigure 17 — Bullet' download ({NODES} nodes, {BLOCKS} blocks)")
    print(f"  baseline median completion:    {median(base_times):8.1f} s "
          f"({baseline.outcome['nodes_completed']}/{baseline.outcome['total_nodes']} nodes)")
    print(f"  CrystalBall median completion: {median(cb_times):8.1f} s "
          f"({monitored.outcome['nodes_completed']}/{monitored.outcome['total_nodes']} nodes)")
    print(f"  median slowdown: {rel * 100:.1f}%  (paper: <10%)")
    print(f"  checkpoint bytes: {checkpoint_bytes} "
          f"({ckpt_share * 100:.1f}% of total traffic)")
    benchmark.extra_info.update({
        "baseline_cdf": [(p.value, p.fraction) for p in empirical_cdf(base_times)],
        "crystalball_cdf": [(p.value, p.fraction) for p in empirical_cdf(cb_times)],
        "median_slowdown": rel,
        "checkpoint_bytes": checkpoint_bytes,
    })
    assert baseline.outcome["nodes_completed"] == baseline.outcome["total_nodes"]
    assert monitored.outcome["nodes_completed"] == monitored.outcome["total_nodes"]
    # The shape of the paper's result: monitoring does not blow up the
    # download time (we allow a generous margin on the scaled-down setup).
    assert rel < 0.5
