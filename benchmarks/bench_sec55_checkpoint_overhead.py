"""Section 5.5: checkpoint sizes and bandwidth overheads.

The paper reports average checkpoint sizes of 176 bytes for RandTree and
1028 bytes for Chord, and per-node checkpoint bandwidth of 803 bps and
8224 bps respectively in 100-node runs.  We measure checkpoint sizes and the
control-plane bandwidth of our implementation on smaller runs and check the
shape: Chord checkpoints are several times larger than RandTree checkpoints
and the checkpoint traffic stays a small fraction of a node's bandwidth.
"""

from __future__ import annotations

import pytest

from repro.analysis import mean
from repro.api import Experiment
from repro.mc import SearchBudget, TransitionConfig

DURATION = 200.0
NODES = 8


def _run(system: str):
    report = (Experiment(system)
              .nodes(NODES)
              .duration(DURATION)
              .churn(False)
              .crystalball("debug",
                           budget=SearchBudget(max_states=150, max_depth=4),
                           transition=TransitionConfig(enable_resets=False))
              .seed(3)
              .max_events(120_000)
              .run())
    sizes = []
    for controller in report.controllers.values():
        latest = controller.store.latest()
        if latest is not None:
            sizes.append(latest.size_bytes())
    checkpoint_bytes = report.checkpoint_bytes()
    bits_per_second_per_node = checkpoint_bytes * 8 / DURATION / NODES
    return {"mean_checkpoint_bytes": mean(sizes),
            "checkpoint_bps_per_node": bits_per_second_per_node,
            "service_bytes": report.simulator.total_service_bytes()}


PAPER = {"randtree": {"checkpoint_bytes": 176, "bps": 803},
         "chord": {"checkpoint_bytes": 1028, "bps": 8224}}


@pytest.mark.benchmark(group="sec55")
def test_sec55_checkpoint_sizes_and_bandwidth(benchmark):
    results = benchmark.pedantic(
        lambda: {name: _run(name) for name in ("randtree", "chord")},
        rounds=1, iterations=1)
    print("\nSection 5.5 — checkpoint overhead")
    for name, measured in results.items():
        paper = PAPER[name]
        print(f"  {name}: checkpoint ~{measured['mean_checkpoint_bytes']:.0f} B "
              f"(paper {paper['checkpoint_bytes']} B), "
              f"{measured['checkpoint_bps_per_node']:.0f} bps/node "
              f"(paper {paper['bps']} bps, 100 nodes)")
    benchmark.extra_info.update({"measured": results, "paper": PAPER})
    # Shape: Chord state is substantially larger than RandTree state.
    assert (results["chord"]["mean_checkpoint_bytes"]
            > results["randtree"]["mean_checkpoint_bytes"])
    # Checkpoint traffic stays far below the service's own traffic volume.
    for name, measured in results.items():
        assert measured["checkpoint_bps_per_node"] < 200_000
