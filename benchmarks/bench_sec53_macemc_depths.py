"""Section 5.3: depths reachable by exhaustive search from the initial state.

The paper reports that after 17 hours MaceMC's exhaustive search reached
depth 12 for RandTree with 5 nodes, depth 1 with 100 nodes, depth 14 for
Chord with 5 nodes and depth 2 with 100 nodes — and found none of the bugs
CrystalBall found.  We reproduce the shape with a fixed state budget instead
of a 17-hour run: the reachable depth collapses as the number of nodes grows
and the CrystalBall-found violations stay out of reach of the search.
"""

from __future__ import annotations

import pytest

from repro.mc import GlobalState, SearchBudget, find_errors
from repro.runtime import make_addresses
from repro.systems import chord, randtree
from repro.systems.chord import JOIN_TIMER as CHORD_JOIN_TIMER
from repro.systems.randtree import JOIN_TIMER as RT_JOIN_TIMER

from .conftest import make_system

STATE_BUDGET = 4000
PAPER_DEPTHS = {("RandTree", 5): 12, ("RandTree", 100): 1,
                ("Chord", 5): 14, ("Chord", 100): 2}


def _initial_state(system_name: str, node_count: int):
    addrs = make_addresses(node_count)
    if system_name == "RandTree":
        protocol = randtree.RandTree(randtree.RandTreeConfig(bootstrap=(addrs[0],)))
        timer = RT_JOIN_TIMER
        properties = randtree.ALL_PROPERTIES
    else:
        protocol = chord.Chord(chord.ChordConfig(bootstrap=(addrs[0],)))
        timer = CHORD_JOIN_TIMER
        properties = chord.ALL_PROPERTIES
    states = {a: protocol.initial_state(a) for a in addrs}
    timers = {a: [timer] for a in addrs}
    return protocol, GlobalState.from_snapshot(states, timers=timers), properties


def _run(system_name: str, node_count: int):
    protocol, start, properties = _initial_state(system_name, node_count)
    result = find_errors(make_system(protocol, resets=False), start, properties,
                         SearchBudget(max_states=STATE_BUDGET))
    return result


@pytest.mark.benchmark(group="sec53")
@pytest.mark.parametrize("system_name,node_count",
                         [("RandTree", 5), ("RandTree", 25),
                          ("Chord", 5), ("Chord", 25)])
def test_exhaustive_depth_from_initial_state(benchmark, system_name, node_count):
    result = benchmark.pedantic(lambda: _run(system_name, node_count),
                                rounds=1, iterations=1)
    paper = PAPER_DEPTHS.get((system_name, node_count if node_count == 5 else 100))
    print(f"\n{system_name} with {node_count} nodes: depth "
          f"{result.stats.max_depth_reached} within {STATE_BUDGET} states "
          f"(paper, 17h: depth {paper})")
    benchmark.extra_info.update({
        "system": system_name,
        "nodes": node_count,
        "depth_reached": result.stats.max_depth_reached,
        "states_visited": result.stats.states_visited,
        "crystalball_bugs_found": sorted(result.unique_property_names()),
        "paper_depth_17h": paper,
    })
    # The scripted CrystalBall bugs (children/siblings, pred-self, ...) are
    # not reachable from the initial state within the budget.
    assert "randtree.children_siblings_disjoint" not in result.unique_property_names()
    assert "chord.pred_self_implies_succ_self" not in result.unique_property_names()
    if node_count > 5:
        small = _run(system_name, 5)
        assert result.stats.max_depth_reached <= small.stats.max_depth_reached
