"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper's
evaluation (Section 5).  Benchmarks are sized to run on a laptop in seconds
to minutes; EXPERIMENTS.md records how the measured shapes compare with the
paper's reported numbers.
"""

from __future__ import annotations

import pytest

from repro.mc import SearchBudget, TransitionConfig, TransitionSystem


def make_system(protocol, *, resets=True, max_resets=1):
    return TransitionSystem(protocol, TransitionConfig(enable_resets=resets,
                                                       max_resets_per_node=max_resets))


@pytest.fixture
def experiment_budget():
    return SearchBudget(max_states=6000, max_depth=9)
