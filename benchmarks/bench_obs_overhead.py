"""Observability overhead: the disabled path must be (nearly) free.

Every hot site in the runtime/monitor/controller now carries an
``if tracer is not None`` / ``if metrics is not None`` guard.  This
benchmark prices those guards on the same workload as the monitor-overhead
benchmark — a 24-node live Chord deployment, the per-event hot path of the
repo — via three identical seeded runs:

* **disabled** — observability off (``ObsContext()``): the production
  default, paying only the guards;
* **noop** — a :class:`~repro.obs.NullTracer` plus a live metrics
  registry: every guard passes and every helper dispatches, but nothing is
  recorded.  This is a strict superset of the disabled path's work, so
  ``noop/disabled - 1`` is a conservative *upper bound* on what the guards
  plus dispatch cost — the number the <3% gate judges;
* **traced** — a real :class:`~repro.obs.JsonlTracer` streaming to disk
  plus metrics: the full price of ``--trace``, reported for information.

All three runs must produce bit-identical reports (metrics and wall clock
aside) — observability that perturbs the run is a bug, not overhead.

The record is written to ``BENCH_obs_overhead.json`` at the repository
root.  Environment knobs: ``CB_OBS_BENCH_QUICK=1`` shrinks the run for CI
smoke; ``CB_OBS_BENCH_RESULT`` redirects the output so the committed
baseline is not clobbered; ``CB_OBS_NODES`` / ``CB_OBS_DURATION`` override
the deployment size.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.api.experiment import LiveRun
from repro.obs import JsonlTracer, MetricsRegistry, NullTracer
from repro.runtime import make_addresses
from repro.systems.chord import Chord, ChordConfig
from repro.systems.chord.properties import ALL_PROPERTIES

QUICK = os.environ.get("CB_OBS_BENCH_QUICK", "") not in ("", "0")
NODES = int(os.environ.get("CB_OBS_NODES", "12" if QUICK else "24"))
DURATION = float(os.environ.get("CB_OBS_DURATION", "200" if QUICK else "400"))
SEED = 7
MAX_DISABLED_OVERHEAD_PCT = 3.0
RESULT_PATH = Path(os.environ.get(
    "CB_OBS_BENCH_RESULT",
    Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"))


def _run(variant, trace_dir):
    """One seeded live Chord run; returns (seconds, RunReport)."""
    addrs = make_addresses(NODES)
    config = ChordConfig(bootstrap=(addrs[0],))
    kwargs = {}
    if variant == "noop":
        kwargs = {"trace": NullTracer(), "metrics": MetricsRegistry()}
    elif variant == "traced":
        path = Path(trace_dir) / f"trace-{time.monotonic_ns()}.jsonl"
        kwargs = {"trace": JsonlTracer(path), "metrics": MetricsRegistry()}
    live = LiveRun(
        protocol_factory=lambda: Chord(config),
        properties=ALL_PROPERTIES,
        node_count=NODES,
        duration=DURATION,
        churn_mean_interval=DURATION / 4,
        seed=SEED,
        system_name="chord",
        **kwargs,
    )
    started = time.perf_counter()
    report = live.run()
    elapsed = time.perf_counter() - started
    return elapsed, report


def _median_of(fn, rounds):
    samples = [fn() for _ in range(rounds)]
    samples.sort(key=lambda pair: pair[0])
    return samples[len(samples) // 2]


def _comparable(report):
    data = report.to_dict()
    data.pop("metrics")
    data.pop("wall_clock_seconds")
    return data


@pytest.mark.benchmark(group="obs_overhead")
def test_obs_overhead(benchmark, tmp_path):
    rounds = 1 if QUICK else 3

    def sweep():
        with tempfile.TemporaryDirectory(dir=tmp_path) as trace_dir:
            disabled = _median_of(lambda: _run("disabled", None), rounds)
            noop = _median_of(lambda: _run("noop", None), rounds)
            traced = _median_of(lambda: _run("traced", trace_dir), rounds)
        return disabled, noop, traced

    ((disabled_time, disabled_report),
     (noop_time, noop_report),
     (traced_time, traced_report)) = benchmark.pedantic(
        sweep, rounds=1, iterations=1)

    # Observability must not perturb the run, at any level.
    assert _comparable(disabled_report) == _comparable(noop_report)
    assert _comparable(disabled_report) == _comparable(traced_report)

    disabled_overhead_pct = max(0.0, noop_time / disabled_time - 1.0) * 100
    traced_overhead_pct = max(0.0, traced_time / disabled_time - 1.0) * 100
    counters = traced_report.metrics["counters"]

    print(f"\nObs overhead — chord, {NODES} nodes, {DURATION:.0f}s "
          f"simulated, {counters['runtime.events_executed']} events")
    print(f"{'variant':>10} {'seconds':>9} {'overhead':>9}")
    print(f"{'disabled':>10} {disabled_time:>9.2f} {'-':>9}")
    print(f"{'noop':>10} {noop_time:>9.2f} {disabled_overhead_pct:>8.2f}%")
    print(f"{'traced':>10} {traced_time:>9.2f} {traced_overhead_pct:>8.2f}%")

    record = {
        "scenario": f"chord-live-{NODES}nodes",
        "nodes": NODES,
        "duration": DURATION,
        "seed": SEED,
        "quick": QUICK,
        "events_executed": counters["runtime.events_executed"],
        "messages_sent": counters["runtime.messages_sent"],
        "disabled_seconds": round(disabled_time, 3),
        "noop_seconds": round(noop_time, 3),
        "traced_seconds": round(traced_time, 3),
        "disabled_overhead_pct": round(disabled_overhead_pct, 3),
        "traced_overhead_pct": round(traced_overhead_pct, 3),
        "max_disabled_overhead_pct": MAX_DISABLED_OVERHEAD_PCT,
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info.update(record)

    if QUICK:
        return  # CI smoke records the numbers without judging them
    assert disabled_overhead_pct < MAX_DISABLED_OVERHEAD_PCT, (
        f"disabled observability should be free; the no-op upper bound "
        f"measured {disabled_overhead_pct:.2f}% "
        f"(limit {MAX_DISABLED_OVERHEAD_PCT}%)")
