"""Benchmark harness regenerating the paper's tables and figures.

A package (not just a directory) so that ``pytest benchmarks/bench_X.py``
can resolve the ``from .conftest import ...`` helpers.
"""
