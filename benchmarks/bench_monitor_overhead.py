"""Live-monitor overhead: full per-event recheck vs the incremental path.

The live property monitor re-evaluates the property set after *every*
executed event, which makes it the per-event hot path of a live run.  The
incremental fast path re-checks node-scoped properties only at the dirty
nodes (the event's node plus liveness/incarnation changes); this benchmark
measures what that buys on a 24-node Chord deployment — all three Chord
properties are node-scoped, so the full recheck pays 24x the property work
per event.

Three identical seeded runs are timed: no monitor (the baseline event
cost), a full-recheck monitor, and an incremental monitor.  The *monitor
overhead* of each variant is its wall clock minus the baseline, and the
speedup is full-overhead / incremental-overhead.  The two monitored runs
must produce bit-identical violation records — the fast path is only a
fast path if it changes nothing.

The record is written to ``BENCH_monitor_overhead.json`` at the repository
root.  Environment knobs: ``CB_MONITOR_BENCH_QUICK=1`` shrinks the run for
CI smoke (no speedup assertion); ``CB_MONITOR_BENCH_RESULT`` redirects the
output so the committed baseline is not clobbered; ``CB_MONITOR_NODES`` /
``CB_MONITOR_DURATION`` override the deployment size.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.api.experiment import LiveRun
from repro.runtime import make_addresses
from repro.systems.chord import Chord, ChordConfig
from repro.systems.chord.properties import ALL_PROPERTIES

QUICK = os.environ.get("CB_MONITOR_BENCH_QUICK", "") not in ("", "0")
NODES = int(os.environ.get("CB_MONITOR_NODES", "12" if QUICK else "24"))
DURATION = float(os.environ.get("CB_MONITOR_DURATION",
                                "200" if QUICK else "400"))
SEED = 7
RESULT_PATH = Path(os.environ.get(
    "CB_MONITOR_BENCH_RESULT",
    Path(__file__).resolve().parent.parent / "BENCH_monitor_overhead.json"))


def _run(monitor_mode):
    """One seeded 24-node Chord run; returns (seconds, monitor or None)."""
    addrs = make_addresses(NODES)
    config = ChordConfig(bootstrap=(addrs[0],))
    live = LiveRun(
        protocol_factory=lambda: Chord(config),
        properties=ALL_PROPERTIES if monitor_mode is not None else [],
        node_count=NODES,
        duration=DURATION,
        churn_mean_interval=DURATION / 4,
        seed=SEED,
        incremental_monitor=bool(monitor_mode),
        system_name="chord",
    )
    started = time.perf_counter()
    report = live.run()
    elapsed = time.perf_counter() - started
    return elapsed, report.live_monitor


def _median_of(fn, rounds):
    samples = [fn() for _ in range(rounds)]
    samples.sort(key=lambda pair: pair[0])
    return samples[len(samples) // 2]


@pytest.mark.benchmark(group="monitor_overhead")
def test_monitor_overhead(benchmark):
    rounds = 1 if QUICK else 3

    def sweep():
        baseline, _ = _median_of(lambda: _run(None), rounds)
        full_time, full_monitor = _median_of(lambda: _run(False), rounds)
        incremental_time, incremental_monitor = _median_of(
            lambda: _run(True), rounds)
        return (baseline, full_time, full_monitor,
                incremental_time, incremental_monitor)

    (baseline, full_time, full_monitor,
     incremental_time, incremental_monitor) = benchmark.pedantic(
        sweep, rounds=1, iterations=1)

    # The fast path must be invisible in the results.
    assert incremental_monitor.records == full_monitor.records
    assert (incremental_monitor.inconsistent_states
            == full_monitor.inconsistent_states)
    assert incremental_monitor.events_checked == full_monitor.events_checked

    full_overhead = max(full_time - baseline, 1e-9)
    incremental_overhead = max(incremental_time - baseline, 1e-9)
    speedup = full_overhead / incremental_overhead

    print(f"\nMonitor overhead — chord, {NODES} nodes, {DURATION:.0f}s "
          f"simulated, {full_monitor.events_checked} events checked")
    print(f"{'variant':>14} {'seconds':>9} {'overhead':>9}")
    print(f"{'no monitor':>14} {baseline:>9.2f} {'-':>9}")
    print(f"{'full recheck':>14} {full_time:>9.2f} {full_overhead:>9.2f}")
    print(f"{'incremental':>14} {incremental_time:>9.2f} "
          f"{incremental_overhead:>9.2f}")
    print(f"incremental speedup on monitor overhead: {speedup:.2f}x")

    record = {
        "scenario": f"chord-live-{NODES}nodes",
        "nodes": NODES,
        "duration": DURATION,
        "seed": SEED,
        "quick": QUICK,
        "events_checked": full_monitor.events_checked,
        "violation_episodes": len(full_monitor.records),
        "baseline_seconds": round(baseline, 3),
        "full_seconds": round(full_time, 3),
        "incremental_seconds": round(incremental_time, 3),
        "full_overhead_seconds": round(full_overhead, 3),
        "incremental_overhead_seconds": round(incremental_overhead, 3),
        "overhead_speedup": round(speedup, 3),
    }
    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info.update(record)

    if QUICK:
        return  # CI smoke records the numbers without judging them
    assert full_monitor.events_checked > 1_000, \
        "workload too small to be a meaningful overhead benchmark"
    assert speedup > 1.5, (
        f"incremental monitoring should cut per-event property work "
        f"~{NODES}x on node-scoped properties; measured {speedup:.2f}x")
