"""Figures 15 and 16: consequence-prediction memory versus search depth.

Figure 15 shows the memory consumed by consequence prediction growing with
depth but staying around a megabyte at the depths CrystalBall uses (7-8);
Figure 16 shows the per-state memory converging to roughly 150 bytes.  We
report our search-tree memory estimate and bytes-per-state for increasing
depth bounds on the Figure 2 RandTree snapshot.
"""

from __future__ import annotations

import pytest

from repro.core import consequence_prediction
from repro.mc import SearchBudget
from repro.systems import randtree

from .conftest import make_system

DEPTHS = [2, 3, 4, 5, 6, 7]


def _sweep():
    scenario = randtree.Figure2Scenario.build()
    system = make_system(scenario.protocol)
    rows = []
    for depth in DEPTHS:
        result = consequence_prediction(
            system, scenario.global_state(), randtree.ALL_PROPERTIES,
            SearchBudget(max_states=60_000, max_depth=depth))
        stats = result.stats
        rows.append((depth, stats.states_visited, stats.peak_memory_bytes,
                     stats.memory_per_state()))
    return rows


@pytest.mark.benchmark(group="fig15-16")
def test_fig15_fig16_memory_growth_and_per_state_cost(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print("\nFigures 15/16 — consequence prediction memory (Figure 2 snapshot)")
    print(f"{'depth':>5} {'states':>8} {'memory (kB)':>12} {'bytes/state':>12}")
    for depth, states, memory, per_state in rows:
        print(f"{depth:>5} {states:>8} {memory / 1024:>12.1f} {per_state:>12.1f}")
    benchmark.extra_info["rows"] = rows
    memories = [memory for _, _, memory, _ in rows]
    per_state = [value for _, _, _, value in rows]
    # Memory grows with depth (Figure 15)...
    assert memories[-1] > memories[0]
    # ... and the per-state cost stabilises rather than diverging (Figure 16):
    # the last two depths agree within a factor of two.
    assert per_state[-1] < 2 * per_state[-2] + 1
