"""Figure 12: elapsed time of exhaustive search as a function of depth.

The paper shows the exponential growth of MaceMC's exhaustive search on
RandTree with 5 nodes (hours by depth 12-13).  We measure the elapsed time
and visited states of our Figure 5 implementation for increasing depth
bounds and check the exponential shape via consecutive-depth growth ratios.
"""

from __future__ import annotations

import pytest

from repro.analysis import growth_ratios
from repro.mc import GlobalState, SearchBudget, find_errors
from repro.runtime import make_addresses
from repro.systems import randtree

from .conftest import make_system

DEPTHS = [1, 2, 3, 4, 5]


def _initial_state():
    addrs = make_addresses(5)
    protocol = randtree.RandTree(randtree.RandTreeConfig(bootstrap=(addrs[0],)))
    states = {a: protocol.initial_state(a) for a in addrs}
    timers = {a: [randtree.JOIN_TIMER] for a in addrs}
    return protocol, GlobalState.from_snapshot(states, timers=timers)


def _sweep():
    protocol, start = _initial_state()
    system = make_system(protocol, resets=False)
    rows = []
    for depth in DEPTHS:
        result = find_errors(system, start, randtree.ALL_PROPERTIES,
                             SearchBudget(max_states=200_000, max_depth=depth))
        rows.append((depth, result.stats.states_visited,
                     result.stats.elapsed_seconds))
    return rows


@pytest.mark.benchmark(group="fig12")
def test_fig12_exhaustive_search_growth(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print("\nFigure 12 — exhaustive search on RandTree (5 nodes)")
    print(f"{'depth':>5} {'states':>10} {'seconds':>9}")
    for depth, states, seconds in rows:
        print(f"{depth:>5} {states:>10} {seconds:>9.3f}")
    state_counts = [states for _, states, _ in rows]
    ratios = growth_ratios([float(s) for s in state_counts])
    benchmark.extra_info.update({"rows": rows, "growth_ratios": ratios})
    # Exponential blow-up: each extra level multiplies the explored states.
    assert all(ratio >= 1.5 for ratio in ratios[1:])
    assert state_counts[-1] > 20 * state_counts[0]
