"""Table 1: inconsistencies found per system by deep online debugging.

The paper reports 7 RandTree, 3 Chord and 3 Bullet' safety bugs found by
CrystalBall on live runs.  Here consequence prediction is run from the
scripted live states of the paper's figures (plus a Bullet' snapshot with a
congested transport) and we count the distinct safety properties violated
per system.
"""

from __future__ import annotations

import pytest

from repro.core import consequence_prediction
from repro.mc import GlobalState, SearchBudget
from repro.runtime import Address
from repro.systems import bulletprime, chord, randtree
from repro.systems.bulletprime.protocol import DIFF_TIMER, DRAIN_TIMER, REQUEST_TIMER

from .conftest import make_system

PAPER_BUG_COUNTS = {"RandTree": 7, "Chord": 3, "BulletPrime": 3}


def _bullet_snapshot():
    sender, receiver = Address(1), Address(2)
    config = bulletprime.BulletConfig(
        source=sender, mesh={sender: (receiver,), receiver: (sender,)},
        block_count=8, send_queue_capacity=64, fix_shadow_map=False)
    protocol = bulletprime.BulletPrime(config)
    sender_state = protocol.initial_state(sender)
    sender_state.queue_bytes[receiver] = 60
    receiver_state = protocol.initial_state(receiver)
    timers = {sender: {DIFF_TIMER, REQUEST_TIMER, DRAIN_TIMER},
              receiver: {DIFF_TIMER, REQUEST_TIMER, DRAIN_TIMER}}
    return protocol, GlobalState.from_snapshot(
        {sender: sender_state, receiver: receiver_state}, timers=timers)


def _count_bugs() -> dict[str, int]:
    found: dict[str, set[str]] = {"RandTree": set(), "Chord": set(),
                                  "BulletPrime": set()}
    budget = SearchBudget(max_states=6000, max_depth=9)

    for scenario in (randtree.Figure2Scenario.build(),
                     randtree.Figure9Scenario.build()):
        result = consequence_prediction(make_system(scenario.protocol),
                                        scenario.global_state(),
                                        randtree.ALL_PROPERTIES, budget)
        found["RandTree"] |= result.unique_property_names()

    for scenario, resets in ((chord.Figure10Scenario.build(), True),
                             (chord.Figure11Scenario.build(), False)):
        result = consequence_prediction(make_system(scenario.protocol, resets=resets),
                                        scenario.global_state(),
                                        chord.ALL_PROPERTIES, budget)
        found["Chord"] |= result.unique_property_names()

    protocol, snapshot = _bullet_snapshot()
    result = consequence_prediction(make_system(protocol, resets=False), snapshot,
                                    bulletprime.ALL_PROPERTIES,
                                    SearchBudget(max_states=4000, max_depth=6))
    found["BulletPrime"] |= result.unique_property_names()

    return {system: len(names) for system, names in found.items()}


@pytest.mark.benchmark(group="table1")
def test_table1_bugs_found(benchmark):
    counts = benchmark.pedantic(_count_bugs, rounds=1, iterations=1)
    print("\nTable 1 — distinct safety violations found by consequence prediction")
    print(f"{'System':<12} {'paper':>6} {'measured':>9}")
    for system, paper in PAPER_BUG_COUNTS.items():
        print(f"{system:<12} {paper:>6} {counts[system]:>9}")
    benchmark.extra_info.update({"paper": PAPER_BUG_COUNTS, "measured": counts})
    assert counts["RandTree"] >= 3
    assert counts["Chord"] >= 2
    assert counts["BulletPrime"] >= 1
