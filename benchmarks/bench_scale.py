"""Heavy-traffic scale axis: events/sec and memory at 256 and 1000 nodes.

Prices the scale work end to end on a workload-driven live Chord
deployment — the O(active) scheduler, batched control-plane fan-out,
sampled deep checking (:class:`~repro.core.controller.CheckingPolicy`)
and delta-encoded checkpoints — against the per-node-tick-equivalent
**baseline**: every controller deep-checks every round (``period=1``,
full compressed checkpoint accounting, sequential fan-out).  Both
variants drive the same open-loop lookup workload (2 req/s per node) and
run property checking disabled, which is *conservative*: the legacy
default also ran the O(n)-per-event property monitor, so the baseline
here is faster than what a 1000-node live run actually cost before.

Each configuration runs in a forked child process so its peak RSS is its
own, not the harness's cumulative high-water mark.

The record is written to ``BENCH_scale.json`` at the repository root:
nodes x events/sec x peak RSS, plus per-node control-plane bytes (which
must stay flat as the deployment grows).  Environment knobs:
``CB_SCALE_QUICK=1`` measures the 256-node pair only (CI smoke);
``CB_SCALE_RESULT`` redirects the output so the committed baseline is
not clobbered.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import resource
import time
from pathlib import Path

import pytest

QUICK = os.environ.get("CB_SCALE_QUICK", "") not in ("", "0")
SEED = 1
MIN_SPEEDUP_256 = 2.0
MIN_SPEEDUP_1000 = 10.0
MIN_DELIVERED_1000 = 1_000_000
RESULT_PATH = Path(os.environ.get(
    "CB_SCALE_RESULT",
    Path(__file__).resolve().parent.parent / "BENCH_scale.json"))

#: (label, nodes, duration, scaled?) — the scaled 1000-node cell is sized
#: so its traffic window (100s at 2000 req/s, ~6 messages per lookup)
#: delivers over a million events.
CONFIGS = [
    ("baseline_256", 256, 40.0 if QUICK else 60.0, False),
    ("scaled_256", 256, 60.0 if QUICK else 120.0, True),
] + ([] if QUICK else [
    ("baseline_1000", 1000, 40.0, False),
    ("scaled_1000", 1000, 120.0, True),
])


def _measure(nodes, duration, scaled, queue):
    from repro.api import Experiment
    from repro.core.controller import CheckingPolicy
    from repro.mc import SearchBudget

    started = time.perf_counter()
    report = (Experiment("chord")
              .nodes(nodes)
              .duration(duration)
              .churn(False)
              .properties()
              .workload("lookups", rate=2.0 * nodes,
                        burst=max(4, nodes // 16), start=20.0)
              .crystalball("debug",
                           budget=SearchBudget(max_states=8, max_depth=2),
                           checking=CheckingPolicy(
                               period=max(1, nodes // 16) if scaled else 1,
                               seed=0),
                           delta_checkpoints=scaled,
                           batched_control_plane=scaled)
              .metrics()
              .max_events(600_000 if not scaled else 4_000_000)
              .seed(SEED)
              .run())
    wall = time.perf_counter() - started
    counters = report.metrics["counters"]
    queue.put({
        "nodes": nodes,
        "duration": duration,
        "checking_period": max(1, nodes // 16) if scaled else 1,
        "wall_seconds": round(wall, 3),
        "events_executed": counters["runtime.events_executed"],
        "messages_delivered": counters["runtime.messages_delivered"],
        "events_per_sec": round(counters["runtime.events_executed"] / wall),
        "requests_injected": report.requests_injected(),
        "requests_completed": report.requests_completed(),
        "snapshots_collected": report.total("snapshots_collected"),
        "incomplete_snapshots": report.total("incomplete_snapshots"),
        "control_bytes_per_node": round(report.checkpoint_bytes() / nodes),
        # Linux reports ru_maxrss in KiB.
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024),
    })


def _run_config(nodes, duration, scaled):
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    proc = ctx.Process(target=_measure,
                       args=(nodes, duration, scaled, queue))
    proc.start()
    result = queue.get()
    proc.join()
    return result


@pytest.mark.benchmark(group="scale")
def test_scale(benchmark):
    def sweep():
        return {label: _run_config(nodes, duration, scaled)
                for label, nodes, duration, scaled in CONFIGS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    record = {
        "scenario": "chord-workload-scale",
        "workload": "lookups @ 2 req/s per node",
        "seed": SEED,
        "quick": QUICK,
        "configs": results,
        "speedup_256": round(results["scaled_256"]["events_per_sec"]
                             / results["baseline_256"]["events_per_sec"], 2),
        "min_speedup_256": MIN_SPEEDUP_256,
    }
    if not QUICK:
        record["speedup_1000"] = round(
            results["scaled_1000"]["events_per_sec"]
            / results["baseline_1000"]["events_per_sec"], 2)
        record["min_speedup_1000"] = MIN_SPEEDUP_1000

    print(f"\nScale — chord, workload-driven, quick={QUICK}")
    print(f"{'config':>14} {'nodes':>6} {'ev/s':>8} {'RSS MB':>7} "
          f"{'ctl B/node':>10}")
    for label, result in results.items():
        print(f"{label:>14} {result['nodes']:>6} "
              f"{result['events_per_sec']:>8} {result['peak_rss_mb']:>7} "
              f"{result['control_bytes_per_node']:>10}")

    RESULT_PATH.write_text(json.dumps(record, indent=2) + "\n")
    benchmark.extra_info.update(record)

    for label, result in results.items():
        assert result["requests_injected"] > 0, label
        assert result["snapshots_collected"] > 0, label
    assert record["speedup_256"] >= MIN_SPEEDUP_256, record
    if QUICK:
        return  # CI smoke records the 256-node pair without the 1k gates
    assert record["speedup_1000"] >= MIN_SPEEDUP_1000, record
    assert (results["scaled_1000"]["messages_delivered"]
            >= MIN_DELIVERED_1000), results["scaled_1000"]
    # The control plane stays flat per node as the deployment quadruples.
    assert (results["scaled_1000"]["control_bytes_per_node"]
            <= 1.5 * results["scaled_256"]["control_bytes_per_node"]), record
